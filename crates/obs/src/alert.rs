//! Deterministic alert engine over the metric history.
//!
//! Pull-only telemetry leaves the operator to notice trouble; the alert
//! engine reads the [`TelemetryStore`]'s raw tier (explicitly, at
//! [`Resolution::Raw`]) at every snapshot tick and turns
//! metric movement into a bounded, byte-stable log of fired/cleared
//! events with provenance links back to the evidence (query, host,
//! ledger column, trace rid). Three rule kinds cover the known failure
//! modes:
//!
//! * [`RuleKind::Threshold`] — the instantaneous value is at or above a
//!   floor (gauges: `central.hosts_suspected >= 1` means a host went
//!   silent).
//! * [`RuleKind::Delta`] — the last per-interval increment is at or
//!   above a floor (counters: "retransmits happened this tick").
//! * [`RuleKind::Burn`] — the summed increments over the newest *N*
//!   intervals are at or above a budget (sustained shedding rather
//!   than a one-tick blip).
//!
//! Hysteresis: a rule's condition must hold for `for_ticks` consecutive
//! evaluations before it fires, and must be false for `clear_ticks`
//! consecutive evaluations before it clears — flapping metrics produce
//! one fired/cleared pair, not a storm.
//!
//! On top of the explicit rules, an [`AnomalyDetector`] dogfoods Scrub's
//! own estimator ([`Welford`], the same streaming mean/variance used by
//! the two-stage sampler): it maintains a per-metric baseline over
//! history deltas and flags z-score excursions once warmed up. Scrub
//! literally scrubs itself.
//!
//! Everything here is driven by sim time and the seeded run: evaluated
//! over the same history, the engine emits the same events in the same
//! order — alerts obey the same determinism contract as the loss ledger
//! and must fire identically across partition counts (enforced by the
//! differential tests). Rules should therefore only watch metrics that
//! are themselves per-tick partition-invariant (not `_ns` wall-clock
//! values, not `central.ingest_backpressure`).

use std::collections::{BTreeMap, VecDeque};

use scrub_core::config::ScrubConfig;
use scrub_sketch::Welford;
use serde::{Deserialize, Serialize};

use crate::tsdb::{Resolution, TelemetryStore};

/// How a rule condenses a metric's history into one figure per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleKind {
    /// Instantaneous value (newest snapshot) `>= min`.
    Threshold {
        /// Firing floor for the instantaneous value.
        min: i64,
    },
    /// Last per-interval increment `>= min`.
    Delta {
        /// Firing floor for the newest delta.
        min: i64,
    },
    /// Sum of increments over the newest `intervals` intervals `>= budget`.
    Burn {
        /// Firing floor for the summed increments.
        budget: i64,
        /// How many newest intervals the burn window spans.
        intervals: usize,
    },
}

impl RuleKind {
    /// The figure this rule evaluates against the store right now, read
    /// at an explicit resolution (the engine evaluates at
    /// [`Resolution::Raw`] so hysteresis ticks stay snapshot ticks).
    fn value(&self, store: &TelemetryStore, metric: &str, res: Resolution) -> i64 {
        match *self {
            RuleKind::Threshold { .. } => store
                .series(metric, res)
                .last()
                .map(|p| p.value)
                .unwrap_or(0),
            RuleKind::Delta { .. } => store
                .deltas(metric, res)
                .last()
                .map(|p| p.value)
                .unwrap_or(0),
            RuleKind::Burn { intervals, .. } => {
                let deltas = store.deltas(metric, res);
                let n = deltas.len().saturating_sub(intervals.max(1));
                deltas[n..].iter().map(|p| p.value).sum()
            }
        }
    }

    /// Firing floor for the figure.
    fn min(&self) -> i64 {
        match *self {
            RuleKind::Threshold { min } | RuleKind::Delta { min } => min,
            RuleKind::Burn { budget, .. } => budget,
        }
    }

    /// Human-readable condition, e.g. `delta>=1` or `burn>=1 over 4
    /// intervals` — for rule listings in shells and reports.
    pub fn describe(&self) -> String {
        match *self {
            RuleKind::Threshold { min } => format!("value>={min}"),
            RuleKind::Delta { min } => format!("delta>={min}"),
            RuleKind::Burn { budget, intervals } => {
                format!("burn>={budget} over {intervals} intervals")
            }
        }
    }

    /// Short label for renders (`thr` / `delta` / `burn`).
    pub fn label(&self) -> &'static str {
        match self {
            RuleKind::Threshold { .. } => "thr",
            RuleKind::Delta { .. } => "delta",
            RuleKind::Burn { .. } => "burn",
        }
    }
}

/// One alert rule: a metric, a condition, and hysteresis windows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Stable identifier (also the dedup key — adding a rule with an
    /// existing id replaces it).
    pub id: String,
    /// Registry metric name the rule watches.
    pub metric: String,
    /// Condition kind and firing floor.
    pub kind: RuleKind,
    /// Consecutive true evaluations required before firing (min 1).
    pub for_ticks: u32,
    /// Consecutive false evaluations required before clearing (min 1).
    pub clear_ticks: u32,
}

/// Evidence an alert points at: where to look next.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertProvenance {
    /// Query the evidence belongs to.
    pub query_id: Option<u64>,
    /// Host most implicated (largest cumulative contribution).
    pub host: Option<String>,
    /// Loss-ledger column (or flag) naming the cause bucket.
    pub ledger_column: Option<String>,
    /// A sampled trace request id carrying a relevant span.
    pub trace_rid: Option<u64>,
}

impl AlertProvenance {
    /// True when no link is set.
    pub fn is_empty(&self) -> bool {
        self.query_id.is_none()
            && self.host.is_none()
            && self.ledger_column.is_none()
            && self.trace_rid.is_none()
    }

    /// Deterministic bracketed render, empty string when nothing is set.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut parts = Vec::new();
        if let Some(q) = self.query_id {
            parts.push(format!("q={q}"));
        }
        if let Some(h) = &self.host {
            parts.push(format!("host={h}"));
        }
        if let Some(c) = &self.ledger_column {
            parts.push(format!("col={c}"));
        }
        if let Some(r) = self.trace_rid {
            parts.push(format!("rid={r}"));
        }
        format!("[{}]", parts.join(" "))
    }
}

/// What happened to a rule (or baseline) at a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertEventKind {
    /// Rule condition held for `for_ticks` — the alert is now active.
    Fired,
    /// Rule condition was false for `clear_ticks` — the alert resolved.
    Cleared,
    /// Welford baseline flagged a z-score excursion on a watched metric.
    Anomaly,
}

impl AlertEventKind {
    /// Fixed-width render label.
    pub fn label(&self) -> &'static str {
        match self {
            AlertEventKind::Fired => "FIRED",
            AlertEventKind::Cleared => "CLEARED",
            AlertEventKind::Anomaly => "ANOMALY",
        }
    }
}

/// One entry of the alert log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Sim time of the evaluation tick that produced the event.
    pub at_ms: i64,
    /// Fired / cleared / anomaly.
    pub kind: AlertEventKind,
    /// Rule id (for anomalies: `anomaly`).
    pub rule: String,
    /// Metric the rule or baseline watches.
    pub metric: String,
    /// The figure at the tick (rule figure, or the flagged delta).
    pub value: i64,
    /// Anomaly z-score in thousandths (`6350` = 6.35σ), rules: `None`.
    pub z_milli: Option<i64>,
    /// Evidence links (empty for cleared events and anomalies).
    pub provenance: AlertProvenance,
}

impl AlertEvent {
    /// One deterministic log line (sim time only — safe for goldens).
    pub fn render(&self) -> String {
        let mut line = format!(
            "t={:>8} ms {:<7} {:<17} {} = {}",
            self.at_ms,
            self.kind.label(),
            self.rule,
            self.metric,
            self.value
        );
        if let Some(z) = self.z_milli {
            line.push_str(&format!(" z={:.2}", z as f64 / 1_000.0));
        }
        let prov = self.provenance.render();
        if !prov.is_empty() {
            line.push_str("  ");
            line.push_str(&prov);
        }
        line
    }
}

/// Bounded ring of alert events; at capacity the oldest entry is
/// dropped and counted, so the log itself cannot become a leak.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertLog {
    cap: usize,
    events: VecDeque<AlertEvent>,
    /// Events evicted at capacity.
    pub dropped: u64,
}

impl AlertLog {
    /// Empty log retaining up to `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        AlertLog {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append one event, evicting the oldest at capacity.
    pub fn push(&mut self, ev: AlertEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AlertEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event was ever logged (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Byte-stable multi-line render of the retained log.
    pub fn render(&self) -> String {
        let mut out = format!(
            "alert log: {} event(s), {} dropped\n",
            self.events.len(),
            self.dropped
        );
        for ev in &self.events {
            out.push_str("  ");
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct RuleState {
    consec_true: u32,
    consec_false: u32,
    firing: bool,
}

/// Welford-baseline anomaly detection over history deltas.
///
/// For each watched metric the detector streams per-interval deltas
/// into a [`Welford`] accumulator. Once at least `min_intervals`
/// observations are in, a new delta further than `z` standard
/// deviations from the running mean (σ floored at 1.0 so a
/// near-constant series does not flag on the first +1) is reported as
/// an [`AlertEventKind::Anomaly`]. The flagged delta is then absorbed
/// into the baseline, so a sustained level shift flags once and
/// becomes the new normal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyDetector {
    z: f64,
    min_intervals: u64,
    metrics: Vec<String>,
    baselines: BTreeMap<String, Welford>,
    last_at: BTreeMap<String, i64>,
}

impl AnomalyDetector {
    /// Detector flagging deltas beyond `z`σ after `min_intervals`
    /// warmup observations, over the given watchlist.
    pub fn new(z: f64, min_intervals: u64, metrics: Vec<String>) -> Self {
        AnomalyDetector {
            z: if z > 0.0 { z } else { 6.0 },
            min_intervals: min_intervals.max(2),
            metrics,
            baselines: BTreeMap::new(),
            last_at: BTreeMap::new(),
        }
    }

    /// Watched metric names.
    pub fn metrics(&self) -> &[String] {
        &self.metrics
    }

    /// The baseline for one watched metric, if it has observations.
    pub fn baseline(&self, metric: &str) -> Option<&Welford> {
        self.baselines.get(metric)
    }

    /// Absorb raw-tier deltas newer than the last call and return
    /// anomaly events.
    fn tick(&mut self, store: &TelemetryStore) -> Vec<AlertEvent> {
        let mut out = Vec::new();
        for metric in &self.metrics {
            let seen = self.last_at.get(metric).copied().unwrap_or(i64::MIN);
            let base = self.baselines.entry(metric.clone()).or_default();
            let mut newest = seen;
            for p in store.deltas(metric, Resolution::Raw) {
                if p.at_ms <= seen {
                    continue;
                }
                newest = p.at_ms;
                let d = p.value as f64;
                if base.count() >= self.min_intervals {
                    let sigma = base.stddev().max(1.0);
                    let z = (d - base.mean()).abs() / sigma;
                    if z > self.z {
                        out.push(AlertEvent {
                            at_ms: p.at_ms,
                            kind: AlertEventKind::Anomaly,
                            rule: "anomaly".into(),
                            metric: metric.clone(),
                            value: p.value,
                            z_milli: Some((z * 1_000.0).round() as i64),
                            provenance: AlertProvenance::default(),
                        });
                    }
                }
                base.add(d);
            }
            if newest > seen {
                self.last_at.insert(metric.clone(), newest);
            }
        }
        out
    }
}

/// The alert engine: rules + hysteresis states + anomaly baselines +
/// the bounded log. Owned by ScrubCentral and ticked right after each
/// history snapshot is recorded.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: BTreeMap<String, RuleState>,
    anomaly: AnomalyDetector,
    log: AlertLog,
    last_eval_ms: Option<i64>,
}

impl AlertEngine {
    /// Engine with no rules and an empty watchlist.
    pub fn new(log_cap: usize) -> Self {
        AlertEngine {
            rules: Vec::new(),
            states: BTreeMap::new(),
            anomaly: AnomalyDetector::new(6.0, 12, Vec::new()),
            log: AlertLog::new(log_cap),
            last_eval_ms: None,
        }
    }

    /// Engine assembled from the config knobs: default rules for the
    /// known failure modes plus the configured anomaly watchlist.
    pub fn from_config(cfg: &ScrubConfig) -> Self {
        let mut eng = AlertEngine::new(cfg.alert_log_cap);
        for rule in default_rules(cfg.alert_for_ticks, cfg.alert_clear_ticks) {
            eng.add_rule(rule);
        }
        eng.anomaly = AnomalyDetector::new(
            cfg.anomaly_z,
            cfg.anomaly_min_intervals as u64,
            cfg.anomaly_metrics.clone(),
        );
        eng
    }

    /// Add (or replace, by id) one rule. Evaluation order is rule id
    /// order, so the event stream does not depend on insertion order.
    pub fn add_rule(&mut self, rule: AlertRule) {
        self.rules.retain(|r| r.id != rule.id);
        self.rules.push(rule);
        self.rules.sort_by(|a, b| a.id.cmp(&b.id));
    }

    /// Installed rules, in evaluation (id) order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// The anomaly detector (watchlist + baselines).
    pub fn anomaly(&self) -> &AnomalyDetector {
        &self.anomaly
    }

    /// The bounded alert log.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Rule and anomaly-watchlist entries naming metrics absent from
    /// `known` (the metric names a live deployment actually exposes),
    /// as `(source, metric)` pairs in evaluation order. A typo'd rule
    /// or `anomaly_metrics` entry otherwise watches a series that never
    /// moves — callers surface these as a startup warning with
    /// closest-match suggestions.
    pub fn missing_metrics(&self, known: &[String]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if !known.iter().any(|k| k == &rule.metric) {
                out.push((format!("rule {}", rule.id), rule.metric.clone()));
            }
        }
        for metric in self.anomaly.metrics() {
            if !known.iter().any(|k| k == metric) {
                out.push(("anomaly_metrics".to_string(), metric.clone()));
            }
        }
        out
    }

    /// True when the rule with this id is currently firing.
    pub fn is_firing(&self, rule_id: &str) -> bool {
        self.states.get(rule_id).map(|s| s.firing).unwrap_or(false)
    }

    /// Ids of all currently-firing rules, sorted.
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .filter(|r| self.is_firing(&r.id))
            .map(|r| r.id.as_str())
            .collect()
    }

    /// Evaluate every rule (and the anomaly baselines) against the
    /// telemetry store's newest raw snapshot. `provenance` is consulted
    /// for each newly-fired rule to attach evidence links. Returns the
    /// events produced this tick (also appended to the log).
    /// Re-evaluating the same tick is a no-op, so a forced snapshot
    /// cannot double-fire.
    pub fn tick<F>(&mut self, store: &TelemetryStore, mut provenance: F) -> Vec<AlertEvent>
    where
        F: FnMut(&AlertRule, i64) -> AlertProvenance,
    {
        let Some(last) = store.raw().latest() else {
            return Vec::new();
        };
        let at_ms = last.at_ms;
        if self.last_eval_ms == Some(at_ms) {
            return Vec::new();
        }
        self.last_eval_ms = Some(at_ms);

        let mut out = Vec::new();
        for rule in &self.rules {
            let value = rule.kind.value(store, &rule.metric, Resolution::Raw);
            let cond = value >= rule.kind.min();
            let s = self.states.entry(rule.id.clone()).or_default();
            if cond {
                s.consec_true += 1;
                s.consec_false = 0;
            } else {
                s.consec_false += 1;
                s.consec_true = 0;
            }
            if !s.firing && cond && s.consec_true >= rule.for_ticks.max(1) {
                s.firing = true;
                out.push(AlertEvent {
                    at_ms,
                    kind: AlertEventKind::Fired,
                    rule: rule.id.clone(),
                    metric: rule.metric.clone(),
                    value,
                    z_milli: None,
                    provenance: provenance(rule, value),
                });
            } else if s.firing && !cond && s.consec_false >= rule.clear_ticks.max(1) {
                s.firing = false;
                out.push(AlertEvent {
                    at_ms,
                    kind: AlertEventKind::Cleared,
                    rule: rule.id.clone(),
                    metric: rule.metric.clone(),
                    value,
                    z_milli: None,
                    provenance: AlertProvenance::default(),
                });
            }
        }
        out.extend(self.anomaly.tick(store));
        for ev in &out {
            self.log.push(ev.clone());
        }
        out
    }
}

/// The built-in rules for Scrub's known failure modes. All watch
/// node-side, per-tick partition-invariant metrics — never wall-clock
/// (`_ns`) values or backend-dependent counters like
/// `central.ingest_backpressure`.
pub fn default_rules(for_ticks: u32, clear_ticks: u32) -> Vec<AlertRule> {
    let mk = |id: &str, metric: &str, kind: RuleKind| AlertRule {
        id: id.into(),
        metric: metric.into(),
        kind,
        for_ticks,
        clear_ticks,
    };
    vec![
        // a host went silent past the grace period (gauge, set by
        // central's dead-host refresh)
        mk(
            "host_dead",
            "central.hosts_suspected",
            RuleKind::Threshold { min: 1 },
        ),
        // new selected-but-undelivered exposure appeared this tick
        mk(
            "batch_dropped",
            "ledger.batch_dropped",
            RuleKind::Delta { min: 1 },
        ),
        // agents are resending batches (drops or lost acks upstream)
        mk(
            "retransmit_storm",
            "agent.retransmitted_batches",
            RuleKind::Delta { min: 1 },
        ),
        // a bounded group-by hit its max_groups cap
        mk(
            "groups_overflow",
            "overload.groups_overflow",
            RuleKind::Delta { min: 1 },
        ),
        // sustained budget shedding: the CPU envelope is being enforced
        // by dropping events over several consecutive intervals
        mk(
            "envelope_breach",
            "overload.budget_shed_events",
            RuleKind::Burn {
                budget: 1,
                intervals: 4,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    fn snap(at_ms: i64, counter: u64, gauge: i64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            at_ms,
            ..Default::default()
        };
        s.counters.insert("c".into(), counter);
        s.gauges.insert("g".into(), gauge);
        s
    }

    fn no_prov(_: &AlertRule, _: i64) -> AlertProvenance {
        AlertProvenance::default()
    }

    #[test]
    fn threshold_rule_fires_and_clears_with_hysteresis() {
        let mut eng = AlertEngine::new(16);
        eng.add_rule(AlertRule {
            id: "g_high".into(),
            metric: "g".into(),
            kind: RuleKind::Threshold { min: 5 },
            for_ticks: 2,
            clear_ticks: 2,
        });
        let mut h = TelemetryStore::new(16, 10, 100, 8);
        let mut fire_at = None;
        let mut clear_at = None;
        for (i, g) in [0i64, 7, 7, 7, 0, 7, 0, 0, 0].iter().enumerate() {
            h.record(snap(i as i64 * 1_000, 0, *g));
            for ev in eng.tick(&h, no_prov) {
                match ev.kind {
                    AlertEventKind::Fired => fire_at = Some(ev.at_ms),
                    AlertEventKind::Cleared => clear_at = Some(ev.at_ms),
                    _ => {}
                }
            }
        }
        // needs 2 consecutive ticks >= 5: t=1000 and t=2000 -> fires at 2000
        assert_eq!(fire_at, Some(2_000));
        // the single dip at t=4000 must NOT clear (clear_ticks=2); the
        // run of zeros from t=6000 clears at t=7000
        assert_eq!(clear_at, Some(7_000));
        assert!(!eng.is_firing("g_high"));
        assert_eq!(eng.log().len(), 2);
    }

    #[test]
    fn delta_rule_sees_per_interval_increments() {
        let mut eng = AlertEngine::new(16);
        eng.add_rule(AlertRule {
            id: "c_moves".into(),
            metric: "c".into(),
            kind: RuleKind::Delta { min: 10 },
            for_ticks: 1,
            clear_ticks: 1,
        });
        let mut h = TelemetryStore::new(16, 10, 100, 8);
        let mut events = Vec::new();
        // counter: +5, +20, +20, +0
        for (i, c) in [0u64, 5, 25, 45, 45].iter().enumerate() {
            h.record(snap(i as i64 * 1_000, *c, 0));
            events.extend(eng.tick(&h, no_prov));
        }
        let kinds: Vec<(i64, AlertEventKind)> = events.iter().map(|e| (e.at_ms, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (2_000, AlertEventKind::Fired),
                (4_000, AlertEventKind::Cleared)
            ]
        );
        assert_eq!(events[0].value, 20);
    }

    #[test]
    fn burn_rule_sums_recent_intervals() {
        let mut eng = AlertEngine::new(16);
        eng.add_rule(AlertRule {
            id: "burn".into(),
            metric: "c".into(),
            kind: RuleKind::Burn {
                budget: 30,
                intervals: 3,
            },
            for_ticks: 1,
            clear_ticks: 1,
        });
        let mut h = TelemetryStore::new(16, 10, 100, 8);
        let mut fired = Vec::new();
        // +12/tick: window of 3 intervals crosses 30 at the 3rd delta
        for (i, c) in [0u64, 12, 24, 36, 36, 36, 36].iter().enumerate() {
            h.record(snap(i as i64 * 1_000, *c, 0));
            for ev in eng.tick(&h, no_prov) {
                fired.push((ev.at_ms, ev.kind, ev.value));
            }
        }
        assert_eq!(fired[0], (3_000, AlertEventKind::Fired, 36));
        // burn window drains as flat intervals roll in: at t=4000 the
        // last 3 deltas are 12, 12, 0 -> sum 24 < 30, so it clears
        assert_eq!(fired[1].1, AlertEventKind::Cleared);
        assert_eq!(fired[1].0, 4_000);
    }

    #[test]
    fn same_tick_reeval_is_noop_and_log_is_bounded() {
        let mut eng = AlertEngine::new(2);
        eng.add_rule(AlertRule {
            id: "g".into(),
            metric: "g".into(),
            kind: RuleKind::Threshold { min: 1 },
            for_ticks: 1,
            clear_ticks: 1,
        });
        let mut h = TelemetryStore::new(8, 10, 100, 8);
        h.record(snap(1_000, 0, 1));
        assert_eq!(eng.tick(&h, no_prov).len(), 1);
        assert!(eng.tick(&h, no_prov).is_empty(), "same tick re-eval");
        // flap to overflow the cap-2 log
        for i in 2..6 {
            h.record(snap(i * 1_000, 0, i % 2));
            eng.tick(&h, no_prov);
        }
        assert_eq!(eng.log().len(), 2);
        assert!(eng.log().dropped > 0);
    }

    #[test]
    fn anomaly_detector_flags_excursion_then_absorbs_it() {
        let mut det = AnomalyDetector::new(4.0, 4, vec!["c".into()]);
        let mut h = TelemetryStore::new(64, 10, 100, 8);
        let mut events = Vec::new();
        // steady +10/tick for 8 ticks, then one +200 spike, then steady
        let mut total = 0u64;
        for i in 0..14i64 {
            total += if i == 9 { 200 } else { 10 };
            h.record(snap(i * 1_000, total, 0));
            events.extend(det.tick(&h));
        }
        assert_eq!(events.len(), 1, "exactly the spike flags: {events:?}");
        assert_eq!(events[0].at_ms, 9_000);
        assert_eq!(events[0].value, 200);
        assert!(events[0].z_milli.unwrap() > 4_000);
        // the spike is absorbed: baseline keeps counting
        assert!(det.baseline("c").unwrap().count() >= 13);
    }

    #[test]
    fn engine_output_is_deterministic_across_runs() {
        let run = || {
            let mut eng = AlertEngine::new(64);
            for r in default_rules(1, 2) {
                eng.add_rule(r);
            }
            eng.anomaly = AnomalyDetector::new(4.0, 4, vec!["c".into()]);
            let mut h = TelemetryStore::new(64, 10, 100, 8);
            let mut total = 0u64;
            for i in 0..20i64 {
                total += ((i * 37) % 11) as u64;
                let mut s = snap(i * 1_000, total, 0);
                s.counters
                    .insert("agent.retransmitted_batches".into(), (i / 5) as u64);
                s.gauges
                    .insert("central.hosts_suspected".into(), i64::from(i > 12));
                h.record(s);
                eng.tick(&h, no_prov);
            }
            eng.log().render()
        };
        let a = run();
        assert_eq!(a, run(), "alert log render must be byte-stable");
        assert!(a.contains("host_dead"));
        assert!(a.contains("retransmit_storm"));
    }

    #[test]
    fn missing_metrics_flags_unknown_rule_and_watchlist_entries() {
        let mut eng = AlertEngine::new(8);
        eng.add_rule(AlertRule {
            id: "typo".into(),
            metric: "central.evnts_ingested".into(),
            kind: RuleKind::Delta { min: 1 },
            for_ticks: 1,
            clear_ticks: 1,
        });
        eng.anomaly = AnomalyDetector::new(4.0, 4, vec!["c".into(), "nope".into()]);
        let known = vec!["c".to_string(), "central.events_ingested".to_string()];
        let missing = eng.missing_metrics(&known);
        assert_eq!(
            missing,
            vec![
                (
                    "rule typo".to_string(),
                    "central.evnts_ingested".to_string()
                ),
                ("anomaly_metrics".to_string(), "nope".to_string()),
            ]
        );
        // a fully-known engine reports nothing
        assert!(AlertEngine::new(4).missing_metrics(&known).is_empty());
    }

    #[test]
    fn provenance_renders_in_fixed_order() {
        let p = AlertProvenance {
            query_id: Some(3),
            host: Some("bid-DC2-1".into()),
            ledger_column: Some("host_dead".into()),
            trace_rid: Some(42),
        };
        assert_eq!(p.render(), "[q=3 host=bid-DC2-1 col=host_dead rid=42]");
        assert_eq!(AlertProvenance::default().render(), "");
    }

    #[test]
    fn rules_evaluate_in_id_order_and_replace_by_id() {
        let mut eng = AlertEngine::new(8);
        eng.add_rule(AlertRule {
            id: "zz".into(),
            metric: "g".into(),
            kind: RuleKind::Threshold { min: 1 },
            for_ticks: 1,
            clear_ticks: 1,
        });
        eng.add_rule(AlertRule {
            id: "aa".into(),
            metric: "g".into(),
            kind: RuleKind::Threshold { min: 1 },
            for_ticks: 1,
            clear_ticks: 1,
        });
        // replace zz with a higher floor
        eng.add_rule(AlertRule {
            id: "zz".into(),
            metric: "g".into(),
            kind: RuleKind::Threshold { min: 100 },
            for_ticks: 1,
            clear_ticks: 1,
        });
        assert_eq!(eng.rules().len(), 2);
        assert_eq!(eng.rules()[0].id, "aa");
        let mut h = TelemetryStore::new(4, 10, 100, 8);
        h.record(snap(1_000, 0, 5));
        let evs = eng.tick(&h, no_prov);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].rule, "aa");
    }
}
