//! Per-query flight recorder: a bounded structured journal of
//! lifecycle events.
//!
//! `profile`/`trace`/`ledger` answer *how much* and *which event*; the
//! flight recorder answers *what happened to this query, in order*:
//! admission verdict, plan chosen, dispatch, window closes and
//! degradations, evictions, retransmit episodes, alert firings — each
//! entry carrying the same provenance links as the alert log (host,
//! ledger column, trace rid). The server journals the control-plane
//! events and ScrubCentral journals the data-plane ones; a query's
//! full timeline is the merge of the two, rendered by
//! `scrubql timeline <qid>` and exportable as JSON.
//!
//! Bounded like every other obs structure: at capacity the oldest
//! entry is evicted and counted. High-frequency events (retransmits)
//! coalesce into episodes — consecutive entries of the same kind with
//! the same detail key extend a `(xN, until t=..)` run instead of
//! appending — so a retransmit storm costs one entry, not hundreds.
//! Everything is sim-time stamped and deterministic, covered by the
//! same golden and 1-vs-N differential suites as the metrics renders.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::alert::AlertProvenance;

/// Default per-query flight-recorder capacity.
pub const DEFAULT_FLIGHT_RECORDER_CAP: usize = 256;

/// Lifecycle event kinds, in rough pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightEventKind {
    /// Admission control verdict for the submitted query.
    Admitted,
    /// Plan compiled and chosen (host plans + central plan summary).
    PlanChosen,
    /// Host plans installed and the query started.
    Dispatched,
    /// This query was evicted to admit a higher-priority arrival.
    Evicted,
    /// A tumbling window closed and emitted rows.
    WindowClose,
    /// A window closed in degraded mode (dead host contributing).
    WindowDegrade,
    /// An agent resent one or more batches (coalesced episode).
    Retransmit,
    /// A host serving this query was declared dead.
    HostDead,
    /// An alert implicating this query fired.
    AlertFired,
    /// An alert implicating this query cleared.
    AlertCleared,
    /// The query was stopped (span elapsed or cancelled).
    Stopped,
    /// Final summary received; the query is done.
    Completed,
}

impl FlightEventKind {
    /// Fixed-width render label.
    pub fn label(&self) -> &'static str {
        match self {
            FlightEventKind::Admitted => "admitted",
            FlightEventKind::PlanChosen => "plan",
            FlightEventKind::Dispatched => "dispatched",
            FlightEventKind::Evicted => "evicted",
            FlightEventKind::WindowClose => "window_close",
            FlightEventKind::WindowDegrade => "window_degrade",
            FlightEventKind::Retransmit => "retransmit",
            FlightEventKind::HostDead => "host_dead",
            FlightEventKind::AlertFired => "alert_fired",
            FlightEventKind::AlertCleared => "alert_cleared",
            FlightEventKind::Stopped => "stopped",
            FlightEventKind::Completed => "completed",
        }
    }
}

/// One journal entry. `count`/`until_ms` describe a coalesced run:
/// `count` occurrences between `at_ms` and `until_ms` inclusive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Sim time of the first occurrence.
    pub at_ms: i64,
    /// Sim time of the last coalesced occurrence (== `at_ms` for one).
    pub until_ms: i64,
    /// Occurrences coalesced into this entry.
    pub count: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Deterministic human detail (also the coalescing key).
    pub detail: String,
    /// Evidence links (host, ledger column, trace rid, query).
    pub provenance: AlertProvenance,
}

impl FlightEvent {
    /// One deterministic timeline line (sim time only).
    pub fn render(&self) -> String {
        let mut line = format!(
            "t={:>8} ms {:<14} {}",
            self.at_ms,
            self.kind.label(),
            self.detail
        );
        if self.count > 1 {
            line.push_str(&format!(" (x{}, until t={} ms)", self.count, self.until_ms));
        }
        let prov = self.provenance.render();
        if !prov.is_empty() {
            line.push_str("  ");
            line.push_str(&prov);
        }
        line
    }

    /// Manual JSON object render (no serde_json dependency here);
    /// stable key order, numbers and escaped strings only.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn opt_num(v: Option<u64>) -> String {
            v.map(|v| v.to_string()).unwrap_or_else(|| "null".into())
        }
        fn opt_str(v: &Option<String>) -> String {
            v.as_ref()
                .map(|v| format!("\"{}\"", esc(v)))
                .unwrap_or_else(|| "null".into())
        }
        format!(
            "{{\"at_ms\": {}, \"until_ms\": {}, \"count\": {}, \"kind\": \"{}\", \
             \"detail\": \"{}\", \"provenance\": {{\"query_id\": {}, \"host\": {}, \
             \"ledger_column\": {}, \"trace_rid\": {}}}}}",
            self.at_ms,
            self.until_ms,
            self.count,
            self.kind.label(),
            esc(&self.detail),
            opt_num(self.provenance.query_id),
            opt_str(&self.provenance.host),
            opt_str(&self.provenance.ledger_column),
            opt_num(self.provenance.trace_rid),
        )
    }
}

/// Bounded journal of one query's lifecycle events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightRecorder {
    /// Query this journal belongs to.
    pub query_id: u64,
    cap: usize,
    events: VecDeque<FlightEvent>,
    /// Entries evicted at capacity.
    pub dropped: u64,
}

impl FlightRecorder {
    /// Empty recorder for `query_id` retaining up to `cap` entries
    /// (min 4 — a journal that cannot hold admission, plan, dispatch
    /// and completion is useless).
    pub fn new(query_id: u64, cap: usize) -> Self {
        FlightRecorder {
            query_id,
            cap: cap.max(4),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append one entry, evicting the oldest at capacity.
    pub fn record(
        &mut self,
        at_ms: i64,
        kind: FlightEventKind,
        detail: impl Into<String>,
        provenance: AlertProvenance,
    ) {
        self.push(FlightEvent {
            at_ms,
            until_ms: at_ms,
            count: 1,
            kind,
            detail: detail.into(),
            provenance,
        });
    }

    /// Append with coalescing: if the newest entry has the same kind
    /// and detail, extend its run (`count += 1`, `until_ms = at_ms`)
    /// instead of appending. Use for high-frequency events
    /// (retransmits) so storms cost one entry.
    pub fn record_coalesced(
        &mut self,
        at_ms: i64,
        kind: FlightEventKind,
        detail: impl Into<String>,
        provenance: AlertProvenance,
    ) {
        let detail = detail.into();
        if let Some(last) = self.events.back_mut() {
            if last.kind == kind && last.detail == detail {
                last.count += 1;
                last.until_ms = at_ms;
                return;
            }
        }
        self.record(at_ms, kind, detail, provenance);
    }

    fn push(&mut self, ev: FlightEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Entries currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Merge journals from several sources (server + central) into one
/// timeline, ordered by `(at_ms, source index, journal order)` — a
/// stable merge, so the render is byte-identical across runs and
/// partition counts.
pub fn merge_timelines(sources: &[&FlightRecorder]) -> Vec<FlightEvent> {
    let mut tagged: Vec<(i64, usize, usize, &FlightEvent)> = Vec::new();
    for (si, rec) in sources.iter().enumerate() {
        for (ei, ev) in rec.events().enumerate() {
            tagged.push((ev.at_ms, si, ei, ev));
        }
    }
    tagged.sort_by_key(|&(at, si, ei, _)| (at, si, ei));
    tagged.into_iter().map(|(_, _, _, ev)| ev.clone()).collect()
}

/// Byte-stable multi-line render of a merged timeline.
pub fn render_timeline(query_id: u64, events: &[FlightEvent], dropped: u64) -> String {
    let mut out = format!(
        "timeline for query {}: {} event(s), {} dropped\n",
        query_id,
        events.len(),
        dropped
    );
    for ev in events {
        out.push_str("  ");
        out.push_str(&ev.render());
        out.push('\n');
    }
    out
}

/// JSON-array render of a merged timeline (stable key order, one
/// object per line).
pub fn render_timeline_json(query_id: u64, events: &[FlightEvent]) -> String {
    let mut out = format!("{{\"query_id\": {query_id}, \"events\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&ev.render_json());
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov(host: &str) -> AlertProvenance {
        AlertProvenance {
            host: Some(host.into()),
            ..Default::default()
        }
    }

    #[test]
    fn coalescing_merges_same_kind_same_detail_runs() {
        let mut r = FlightRecorder::new(1, 16);
        r.record(
            0,
            FlightEventKind::Dispatched,
            "3 host(s)",
            AlertProvenance::default(),
        );
        for t in [1_000, 1_200, 1_400] {
            r.record_coalesced(t, FlightEventKind::Retransmit, "host=h1", prov("h1"));
        }
        r.record_coalesced(2_000, FlightEventKind::Retransmit, "host=h2", prov("h2"));
        r.record_coalesced(2_500, FlightEventKind::Retransmit, "host=h1", prov("h1"));
        let evs: Vec<&FlightEvent> = r.events().collect();
        assert_eq!(evs.len(), 4, "h1 run coalesced, h2 and the later h1 split");
        assert_eq!(evs[1].count, 3);
        assert_eq!(evs[1].at_ms, 1_000);
        assert_eq!(evs[1].until_ms, 1_400);
        assert!(evs[1].render().contains("(x3, until t=1400 ms)"));
    }

    #[test]
    fn recorder_is_bounded_and_counts_drops() {
        let mut r = FlightRecorder::new(1, 4);
        for i in 0..10i64 {
            r.record(
                i * 100,
                FlightEventKind::WindowClose,
                format!("w{i}"),
                AlertProvenance::default(),
            );
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped, 6);
        assert_eq!(r.events().next().unwrap().detail, "w6");
    }

    #[test]
    fn merge_is_stable_by_time_then_source() {
        let mut server = FlightRecorder::new(1, 8);
        server.record(
            0,
            FlightEventKind::Admitted,
            "verdict=Admitted",
            AlertProvenance::default(),
        );
        server.record(
            5_000,
            FlightEventKind::Completed,
            "rows=3",
            AlertProvenance::default(),
        );
        let mut central = FlightRecorder::new(1, 8);
        central.record(
            5_000,
            FlightEventKind::WindowClose,
            "rows=3",
            AlertProvenance::default(),
        );
        let merged = merge_timelines(&[&server, &central]);
        let kinds: Vec<FlightEventKind> = merged.iter().map(|e| e.kind).collect();
        // same tick: server (source 0) sorts before central (source 1)
        assert_eq!(
            kinds,
            vec![
                FlightEventKind::Admitted,
                FlightEventKind::Completed,
                FlightEventKind::WindowClose
            ]
        );
        let text = render_timeline(1, &merged, 0);
        assert_eq!(
            text,
            render_timeline(1, &merge_timelines(&[&server, &central]), 0)
        );
        assert!(text.starts_with("timeline for query 1: 3 event(s)"));
    }

    #[test]
    fn json_render_is_valid_and_stable() {
        let mut r = FlightRecorder::new(7, 8);
        r.record(
            1_000,
            FlightEventKind::AlertFired,
            "rule \"host_dead\"",
            AlertProvenance {
                query_id: Some(7),
                host: Some("h\\1".into()),
                ledger_column: Some("host_dead".into()),
                trace_rid: None,
            },
        );
        let evs: Vec<FlightEvent> = r.events().cloned().collect();
        let json = render_timeline_json(7, &evs);
        // escaped quotes and backslashes, null for absent links
        assert!(json.contains("rule \\\"host_dead\\\""));
        assert!(json.contains("\"host\": \"h\\\\1\""));
        assert!(json.contains("\"trace_rid\": null"));
        assert!(json.contains("\"query_id\": 7"));
        assert_eq!(json, render_timeline_json(7, &evs));
    }
}
