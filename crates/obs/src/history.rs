//! Metric time-series history: a fixed-capacity ring of periodic
//! [`MetricsSnapshot`]s on the sim clock.
//!
//! A point-in-time snapshot answers "how many?"; troubleshooting needs
//! "when did it start?". [`MetricsHistory`] keeps the last *N* periodic
//! snapshots (capacity fixed at construction, old entries overwritten),
//! so `scrubql watch <metric>` can render per-interval deltas as a
//! sparkline and experiments can locate the onset of an anomaly without
//! any external time-series store. Memory is bounded by
//! `capacity × snapshot size`, independent of run length.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;

/// Fixed-capacity ring buffer of periodic metrics snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsHistory {
    cap: usize,
    snaps: VecDeque<MetricsSnapshot>,
}

/// One point of a metric's time series: the sim time and the value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Sim time (ms) of the snapshot.
    pub at_ms: i64,
    /// Metric value at that instant (counters as of, gauges as is).
    pub value: i64,
}

impl MetricsHistory {
    /// Empty history retaining up to `cap` snapshots (min 2 — a history
    /// that cannot hold two points cannot answer a rate query).
    pub fn new(cap: usize) -> Self {
        MetricsHistory {
            cap: cap.max(2),
            snaps: VecDeque::new(),
        }
    }

    /// Record one periodic snapshot, evicting the oldest at capacity.
    /// Snapshots must arrive in sim-clock order: a late snapshot
    /// (earlier than the newest entry) is dropped — it would silently
    /// corrupt every delta behind `watch`/alerts — and `false` is
    /// returned so the caller can count it (`obs.snapshots_out_of_order`).
    /// Same-time re-records replace the newest entry (a forced snapshot
    /// does not skew deltas) and return `true`.
    pub fn record(&mut self, snap: MetricsSnapshot) -> bool {
        if let Some(last) = self.snaps.back() {
            if snap.at_ms < last.at_ms {
                return false;
            }
            if snap.at_ms == last.at_ms {
                *self.snaps.back_mut().unwrap() = snap;
                return true;
            }
        }
        if self.snaps.len() == self.cap {
            self.snaps.pop_front();
        }
        self.snaps.push_back(snap);
        true
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The newest snapshot, if any.
    pub fn latest(&self) -> Option<&MetricsSnapshot> {
        self.snaps.back()
    }

    /// Oldest-to-newest iteration over the retained snapshots.
    pub fn iter(&self) -> impl Iterator<Item = &MetricsSnapshot> {
        self.snaps.iter()
    }

    /// The retained time series of one metric (counter or gauge),
    /// oldest to newest. Snapshots that do not carry the metric yet
    /// report 0 — a counter created mid-run starts its series at zero.
    pub fn series(&self, metric: &str) -> Vec<MetricPoint> {
        self.snaps
            .iter()
            .map(|s| MetricPoint {
                at_ms: s.at_ms,
                value: s
                    .counters
                    .get(metric)
                    .map(|&v| v as i64)
                    .or_else(|| s.gauges.get(metric).copied())
                    .unwrap_or(0),
            })
            .collect()
    }

    /// Per-interval deltas of one metric: `series[i+1] - series[i]`,
    /// timestamped at the end of each interval. For counters this is the
    /// increment per interval (a rate once divided by the interval); for
    /// gauges it is the change. One point shorter than [`Self::series`].
    pub fn deltas(&self, metric: &str) -> Vec<MetricPoint> {
        let series = self.series(metric);
        series
            .windows(2)
            .map(|w| MetricPoint {
                at_ms: w[1].at_ms,
                value: w[1].value - w[0].value,
            })
            .collect()
    }

    /// Rate of a counter over the newest `n` intervals: total increment
    /// divided by elapsed sim seconds (`None` with fewer than 2 points
    /// or zero elapsed time).
    pub fn rate_per_sec(&self, metric: &str, n: usize) -> Option<f64> {
        let series = self.series(metric);
        if series.len() < 2 {
            return None;
        }
        let newest = *series.last().unwrap();
        let oldest = series[series.len().saturating_sub(n + 1).min(series.len() - 2)];
        let dt_ms = newest.at_ms - oldest.at_ms;
        (dt_ms > 0).then(|| (newest.value - oldest.value) as f64 * 1_000.0 / dt_ms as f64)
    }
}

/// Render a value series as a unicode sparkline (one block glyph per
/// point, scaled to the series max; negative values clamp to the
/// baseline). Deterministic pure-text output for `scrubql watch` and
/// experiment tables.
pub fn sparkline(values: &[i64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| {
            let v = v.max(0);
            // 0 maps to the lowest glyph, max to the highest
            let idx = ((v as u128 * (GLYPHS.len() as u128 - 1)).div_ceil(max as u128)) as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_ms: i64, counter: u64, gauge: i64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            at_ms,
            ..Default::default()
        };
        s.counters.insert("c".into(), counter);
        s.gauges.insert("g".into(), gauge);
        s
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut h = MetricsHistory::new(3);
        for i in 0..5 {
            h.record(snap(i * 1_000, i as u64, 0));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.capacity(), 3);
        let times: Vec<i64> = h.iter().map(|s| s.at_ms).collect();
        assert_eq!(times, vec![2_000, 3_000, 4_000]);
        assert_eq!(h.latest().unwrap().at_ms, 4_000);
    }

    #[test]
    fn same_time_record_replaces_newest() {
        let mut h = MetricsHistory::new(4);
        assert!(h.record(snap(1_000, 1, 0)));
        assert!(h.record(snap(1_000, 5, 0)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.latest().unwrap().counters["c"], 5);
    }

    #[test]
    fn late_snapshot_is_dropped_not_recorded() {
        let mut h = MetricsHistory::new(4);
        assert!(h.record(snap(2_000, 2, 0)));
        assert!(!h.record(snap(1_000, 99, 0)));
        assert_eq!(h.len(), 1);
        assert_eq!(h.latest().unwrap().counters["c"], 2);
        // deltas stay clean after the drop
        assert!(h.record(snap(3_000, 5, 0)));
        assert_eq!(h.deltas("c")[0].value, 3);
    }

    #[test]
    fn series_and_deltas_cover_counters_and_gauges() {
        let mut h = MetricsHistory::new(8);
        h.record(snap(0, 0, 10));
        h.record(snap(1_000, 4, 7));
        h.record(snap(2_000, 9, 12));
        let s = h.series("c");
        assert_eq!(s.iter().map(|p| p.value).collect::<Vec<_>>(), vec![0, 4, 9]);
        let d = h.deltas("c");
        assert_eq!(d.iter().map(|p| p.value).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(
            d.iter().map(|p| p.at_ms).collect::<Vec<_>>(),
            vec![1_000, 2_000]
        );
        // gauges can go down
        let dg = h.deltas("g");
        assert_eq!(dg.iter().map(|p| p.value).collect::<Vec<_>>(), vec![-3, 5]);
        // unknown metric: all zeros, not a panic
        assert!(h.deltas("nope").iter().all(|p| p.value == 0));
    }

    #[test]
    fn rate_per_sec_over_recent_window() {
        let mut h = MetricsHistory::new(8);
        assert_eq!(h.rate_per_sec("c", 3), None);
        h.record(snap(0, 0, 0));
        h.record(snap(1_000, 100, 0));
        h.record(snap(2_000, 300, 0));
        // over the last interval: 200 events / 1 s
        assert_eq!(h.rate_per_sec("c", 1), Some(200.0));
        // over everything retained
        assert_eq!(h.rate_per_sec("c", 10), Some(150.0));
    }

    #[test]
    fn sparkline_is_deterministic_and_scaled() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 1, 4, 8]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        // negative values clamp to baseline rather than panicking
        assert_eq!(sparkline(&[-5, 10]).chars().next(), Some('▁'));
        // stable across calls
        assert_eq!(sparkline(&[3, 1, 2]), sparkline(&[3, 1, 2]));
    }
}
