//! Per-operator runtime statistics — the data behind `EXPLAIN ANALYZE`.
//!
//! Every operator of a compiled plan (host-side selection / sampling /
//! projection per FROM type, central decode, join build/probe, residual
//! filter, group/aggregate, window close or stream projection) gets one
//! [`OperatorStats`] slot identified by its stable
//! [`OperatorId`](scrub_core::plan::OperatorId). ScrubCentral fills the
//! slots while the query runs — host-side figures are reconstructed from
//! the cumulative batch-header counters every host ships, central-side
//! figures are counted (and wall-clock timed) in the executor — and the
//! assembled [`PlanProfile`] pairs each operator's *actual* selectivity
//! and cardinality against the planner's *estimates*.
//!
//! # Partition-merge contract
//!
//! Profiles merge across threaded partitions exactly like
//! [`MetricsSnapshot`](crate::MetricsSnapshot) merges, with one twist per
//! counter class:
//!
//! * **host-side operators** (`merge_max == true`): derived from batch
//!   headers, which replicate to *every* partition, so the counters are
//!   merged by componentwise `max` (the cumulative streams are monotone
//!   and identical across partitions);
//! * **central-side operators** (`merge_max == false`): each partition
//!   counts only the disjoint slice of events routed to it, so the
//!   counters are summed.
//!
//! Wall-clock `ns` figures are nondeterministic (they time real work on
//! real threads) and are excluded from differential comparisons and
//! masked in golden renderings; everything else is integer-exact.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Runtime statistics of one plan operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct OperatorStats {
    /// Stable operator id (see `scrub_core::plan::OperatorId`).
    pub id: u32,
    /// Human-readable label, e.g. `selection(bid)`.
    pub label: String,
    /// True for the host-side trio (selection / sampling / projection).
    pub host_side: bool,
    /// Partition-merge rule: componentwise max (host-header-derived
    /// counters) instead of sum (per-partition disjoint counters).
    pub merge_max: bool,
    /// Planner's selectivity estimate for this operator.
    pub est_selectivity: f64,
    /// Rows (events, joined rows, groups — the operator's unit) entering.
    pub rows_in: u64,
    /// Rows leaving (passing the filter, shipped, rendered, …).
    pub rows_out: u64,
    /// Bytes attributed to this operator (shipped bytes for sampling,
    /// decoded bytes for decode; 0 elsewhere).
    pub bytes: u64,
    /// Cumulative time attributed to this operator: cost-model ns on the
    /// host side (deterministic), wall-clock ns at central.
    pub ns: u64,
}

impl OperatorStats {
    /// Rows the planner expected this operator to emit given what
    /// actually entered it.
    pub fn est_rows_out(&self) -> u64 {
        (self.est_selectivity * self.rows_in as f64).round() as u64
    }

    /// Observed selectivity; `None` before any row entered.
    pub fn actual_selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }

    /// Absolute estimate error in selectivity points (|est − actual|),
    /// 0 before any row entered.
    pub fn estimate_error(&self) -> f64 {
        self.actual_selectivity()
            .map(|act| (self.est_selectivity - act).abs())
            .unwrap_or(0.0)
    }

    /// Fold `other` (the same operator observed by another partition)
    /// into `self`, honoring the merge rule.
    fn merge(&mut self, other: &OperatorStats) {
        if self.merge_max {
            self.rows_in = self.rows_in.max(other.rows_in);
            self.rows_out = self.rows_out.max(other.rows_out);
            self.bytes = self.bytes.max(other.bytes);
            self.ns = self.ns.max(other.ns);
        } else {
            self.rows_in += other.rows_in;
            self.rows_out += other.rows_out;
            self.bytes += other.bytes;
            self.ns += other.ns;
        }
    }

    /// The label reduced to the Prometheus-safe charset (for per-operator
    /// metric names): lowercase, runs of other characters collapsed to
    /// `_`, e.g. `join-build(request_id)` → `join_build_request_id`.
    pub fn metric_label(&self) -> String {
        let mut out = String::with_capacity(self.label.len());
        for c in self.label.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('_') {
                out.push('_');
            }
        }
        out.trim_matches('_').to_string()
    }
}

/// An annotation line rendered under the plan tree (sampling τ̂ context,
/// estimator bounds, shed counts — anything worth showing that is not a
/// per-operator counter).
pub type PlanNote = String;

/// The `EXPLAIN ANALYZE` profile of one query: every operator's runtime
/// statistics, in pipeline order, plus free-form annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlanProfile {
    /// Owning query id.
    pub query_id: u64,
    /// Per-operator statistics, sorted by operator id.
    pub ops: Vec<OperatorStats>,
    /// Annotation lines (estimator context, shed accounting, …).
    pub notes: Vec<PlanNote>,
}

impl PlanProfile {
    /// Merge another partition's profile into this one (operators match
    /// by id; unseen operators are appended). Notes are taken from the
    /// profile that has them — partitions produce identical notes.
    pub fn merge(&mut self, other: &PlanProfile) {
        for op in &other.ops {
            match self.ops.iter_mut().find(|o| o.id == op.id) {
                Some(mine) => mine.merge(op),
                None => self.ops.push(op.clone()),
            }
        }
        self.ops.sort_by_key(|o| o.id);
        if self.notes.is_empty() {
            self.notes = other.notes.clone();
        }
    }

    /// Look up an operator by id.
    pub fn op(&self, id: u32) -> Option<&OperatorStats> {
        self.ops.iter().find(|o| o.id == id)
    }

    /// Mutable lookup by id.
    pub fn op_mut(&mut self, id: u32) -> Option<&mut OperatorStats> {
        self.ops.iter_mut().find(|o| o.id == id)
    }

    /// Sum of host-side operator ns (the host-overhead attribution — what
    /// E19 checks against the paper's ≤2.5 % CPU envelope).
    pub fn host_ns(&self) -> u64 {
        self.ops.iter().filter(|o| o.host_side).map(|o| o.ns).sum()
    }

    /// Sum of central-side operator ns.
    pub fn central_ns(&self) -> u64 {
        self.ops.iter().filter(|o| !o.host_side).map(|o| o.ns).sum()
    }

    /// Largest per-operator estimate error, in selectivity points — the
    /// `estimate_error` gauge exported through `render_text`.
    pub fn max_estimate_error(&self) -> f64 {
        self.ops
            .iter()
            .map(OperatorStats::estimate_error)
            .fold(0.0, f64::max)
    }

    /// The placement invariant the paper's planner enforces: every
    /// host-side operator is selection, sampling or projection.
    pub fn host_ops_are_select_project_sample(&self) -> bool {
        self.ops.iter().filter(|o| o.host_side).all(|o| {
            o.label.starts_with("selection(")
                || o.label.starts_with("sampling(")
                || o.label.starts_with("projection(")
        })
    }

    /// Render the annotated plan tree. With `mask_ns` the (nondeterministic
    /// wall-clock) ns column renders as `-`, making the output byte-stable
    /// across seeded runs — the golden-test mode.
    pub fn render(&self, mask_ns: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan profile q#{} — actual rows/selectivity vs planner estimates",
            self.query_id
        );
        let width = self
            .ops
            .iter()
            .map(|o| o.label.len())
            .max()
            .unwrap_or(0)
            .max(12);
        let render_op = |s: &mut String, o: &OperatorStats| {
            let sel = match o.actual_selectivity() {
                Some(act) => format!(
                    "est {:>5.1}% act {:>5.1}% err {:>4.1}pp",
                    o.est_selectivity * 100.0,
                    act * 100.0,
                    o.estimate_error() * 100.0
                ),
                None => format!(
                    "est {:>5.1}% act     -  err     -",
                    o.est_selectivity * 100.0
                ),
            };
            let ns = if mask_ns {
                "-".to_string()
            } else {
                o.ns.to_string()
            };
            let bytes = if o.bytes > 0 {
                format!("  bytes {}", o.bytes)
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "  op{:<3} {:<width$}  rows {:>9} -> {:<9} (est {:>9})  {}  ns {}{}",
                o.id,
                o.label,
                o.rows_in,
                o.rows_out,
                o.est_rows_out(),
                sel,
                ns,
                bytes,
            );
        };
        let _ = writeln!(s, "host stage (selection + projection + sampling ONLY):");
        for o in self.ops.iter().filter(|o| o.host_side) {
            render_op(&mut s, o);
        }
        let _ = writeln!(s, "central stage (ScrubCentral):");
        for o in self.ops.iter().filter(|o| !o.host_side) {
            render_op(&mut s, o);
        }
        for note in &self.notes {
            let _ = writeln!(s, "  · {note}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: u32, label: &str, host: bool, rows_in: u64, rows_out: u64) -> OperatorStats {
        OperatorStats {
            id,
            label: label.to_string(),
            host_side: host,
            merge_max: host,
            est_selectivity: 0.5,
            rows_in,
            rows_out,
            bytes: 10,
            ns: 100,
        }
    }

    #[test]
    fn estimates_and_actuals() {
        let o = op(0, "selection(bid)", true, 1000, 400);
        assert_eq!(o.est_rows_out(), 500);
        assert!((o.actual_selectivity().unwrap() - 0.4).abs() < 1e-12);
        assert!((o.estimate_error() - 0.1).abs() < 1e-12);
        let empty = op(1, "sampling(bid)", true, 0, 0);
        assert_eq!(empty.actual_selectivity(), None);
        assert_eq!(empty.estimate_error(), 0.0);
    }

    #[test]
    fn merge_respects_max_vs_sum() {
        let mut a = PlanProfile {
            query_id: 7,
            ops: vec![
                op(0, "selection(bid)", true, 100, 40),
                op(3, "decode/route", false, 40, 40),
            ],
            notes: vec![],
        };
        let b = PlanProfile {
            query_id: 7,
            ops: vec![
                op(0, "selection(bid)", true, 90, 40),
                op(3, "decode/route", false, 25, 24),
            ],
            notes: vec!["note".into()],
        };
        a.merge(&b);
        // host-side: componentwise max (headers replicate to partitions)
        assert_eq!(a.op(0).unwrap().rows_in, 100);
        assert_eq!(a.op(0).unwrap().rows_out, 40);
        // central-side: sum (partitions see disjoint slices)
        assert_eq!(a.op(3).unwrap().rows_in, 65);
        assert_eq!(a.op(3).unwrap().rows_out, 64);
        assert_eq!(a.notes, vec!["note".to_string()]);
    }

    #[test]
    fn merge_appends_unknown_ops_sorted() {
        let mut a = PlanProfile {
            query_id: 1,
            ops: vec![op(4, "group/aggregate", false, 5, 2)],
            notes: vec![],
        };
        let b = PlanProfile {
            query_id: 1,
            ops: vec![op(0, "selection(bid)", true, 10, 5)],
            notes: vec![],
        };
        a.merge(&b);
        assert_eq!(a.ops.len(), 2);
        assert_eq!(a.ops[0].id, 0);
        assert_eq!(a.ops[1].id, 4);
    }

    #[test]
    fn render_masks_ns_for_golden_stability() {
        let p = PlanProfile {
            query_id: 3,
            ops: vec![
                op(0, "selection(bid)", true, 1000, 400),
                op(3, "decode/route", false, 400, 400),
            ],
            notes: vec!["event sampling 50% (est)".into()],
        };
        let masked = p.render(true);
        assert!(masked.contains("plan profile q#3"));
        assert!(masked.contains("ns -"), "{masked}");
        assert!(!masked.contains("ns 100"));
        assert!(masked.contains("· event sampling 50% (est)"));
        let unmasked = p.render(false);
        assert!(unmasked.contains("ns 100"));
    }

    #[test]
    fn placement_invariant_checker() {
        let good = PlanProfile {
            query_id: 1,
            ops: vec![
                op(0, "selection(bid)", true, 1, 1),
                op(3, "group/aggregate", false, 1, 1),
            ],
            notes: vec![],
        };
        assert!(good.host_ops_are_select_project_sample());
        let bad = PlanProfile {
            query_id: 1,
            ops: vec![op(0, "group/aggregate", true, 1, 1)],
            notes: vec![],
        };
        assert!(!bad.host_ops_are_select_project_sample());
        assert_eq!(good.host_ns(), 100);
        assert_eq!(good.central_ns(), 100);
    }

    #[test]
    fn metric_label_sanitizes() {
        let o = op(0, "join-build(request_id)", false, 0, 0);
        assert_eq!(o.metric_label(), "join_build_request_id");
        let o2 = op(0, "selection(bid)", true, 0, 0);
        assert_eq!(o2.metric_label(), "selection_bid");
    }
}
