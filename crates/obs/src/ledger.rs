//! Loss ledger: where did the events that never reached a result go?
//!
//! Scrub drops events on purpose (sampling, load shedding) and by
//! accident (a lossy network, dead hosts); the [`QueryProfile`] carries
//! enough cumulative per-host counters to attribute every missing event
//! to a cause, and this module does the bookkeeping. The central
//! invariant, enforced per host:
//!
//! ```text
//! tapped == delivered + sampled_out + load_shed + budget_shed + batch_dropped
//! ```
//!
//! where the right-hand buckets are derived from counters with a
//! provable ordering:
//!
//! * the agent maintains `tapped = selected + sampled_out + shed +
//!   budget_shed` as a single-threaded identity, and ships the
//!   cumulative `(tapped, selected, shed, budget_shed)` tuple on every
//!   batch header; central max-merges them, so the tuple it holds is the
//!   agent's own consistent snapshot at the highest-seq batch received →
//!   `sampled_out = tapped - selected - shed - budget_shed ≥ 0`;
//! * delivered events are a subset of the batches `0..=max_seq`, whose
//!   event total equals `selected` at that same snapshot → `batch_dropped
//!   = selected - delivered ≥ 0`.
//!
//! Two further buckets are *annotations*, not terms of the sum (they
//! classify events already counted above, so adding them would
//! double-count): `deduped_retransmit` (events that arrived again on a
//! duplicate batch copy — the first copy is in `delivered`) and
//! `window_degraded` (delivered events whose window later closed
//! degraded). `host_dead` flags hosts currently suspected dead, the
//! usual explanation for a large `batch_dropped`.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::profile::QueryProfile;

/// Where one host's tapped events went, bucketed by cause.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLosses {
    /// Events tapped (matched selection) on the host — the total the
    /// buckets below must account for.
    pub tapped: u64,
    /// Events that reached central and entered the executor.
    pub delivered: u64,
    /// Events dropped by the agent's per-event sampler.
    pub sampled_out: u64,
    /// Events dropped by agent load shedding (per-second budget).
    pub load_shed: u64,
    /// Events dropped by the per-host CPU budget tracker: they passed
    /// sampling, but shipping them would have broken `host_cpu_budget`
    /// that second.
    #[serde(default)]
    pub budget_shed: u64,
    /// Events selected for shipment that never arrived: dropped in
    /// flight, buffered past the retransmit-buffer cap, or stranded on a
    /// dead host.
    pub batch_dropped: u64,
    /// Annotation: events that arrived again on duplicate batch copies
    /// and were discarded by dedup (the first copy is in `delivered`;
    /// not a term of the invariant sum).
    pub deduped_retransmit: u64,
    /// Annotation: delivered events whose window later closed degraded
    /// (subset of `delivered`; not a term of the invariant sum).
    pub window_degraded: u64,
    /// The host is currently suspected dead — the likely explanation for
    /// `batch_dropped`.
    pub host_dead: bool,
}

impl HostLosses {
    /// Events lost for any reason (the invariant's right side minus
    /// `delivered`).
    pub fn total_lost(&self) -> u64 {
        self.sampled_out + self.load_shed + self.budget_shed + self.batch_dropped
    }

    /// Does `tapped == delivered + sampled_out + load_shed + budget_shed
    /// + batch_dropped` hold?
    pub fn reconciles(&self) -> bool {
        self.tapped
            == self.delivered
                + self.sampled_out
                + self.load_shed
                + self.budget_shed
                + self.batch_dropped
    }
}

/// Central-side observations that are not in [`QueryProfile`]'s per-host
/// counters: per-host events lost to degraded windows and the current
/// dead-host suspicion set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerParts {
    /// Host → delivered events whose window closed degraded.
    pub degraded_events: BTreeMap<String, u64>,
    /// Hosts currently suspected dead.
    pub dead_hosts: BTreeSet<String>,
}

/// Per-query, per-host loss accounting, reconciled against the query's
/// profile.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossLedger {
    /// The query this ledger describes.
    pub query_id: u64,
    /// Per-host buckets.
    pub hosts: BTreeMap<String, HostLosses>,
}

impl LossLedger {
    /// Derive the ledger from a query's profile plus central-side parts.
    ///
    /// Debug builds assert the counter orderings the derivation relies
    /// on (`selected + shed <= tapped`, `delivered <= selected`) — a
    /// violation means a producer broke the cumulative-counter contract.
    pub fn build(profile: &QueryProfile, parts: &LedgerParts) -> Self {
        let mut hosts = BTreeMap::new();
        for (host, hp) in &profile.hosts {
            debug_assert!(
                hp.selected + hp.shed + hp.budget_shed <= hp.tapped,
                "host {host}: selected {} + shed {} + budget_shed {} > tapped {} — cumulative counter contract broken",
                hp.selected,
                hp.shed,
                hp.budget_shed,
                hp.tapped
            );
            debug_assert!(
                hp.events <= hp.selected,
                "host {host}: delivered {} > selected {} — events arrived that were never selected",
                hp.events,
                hp.selected
            );
            let sampled_out = hp
                .tapped
                .saturating_sub(hp.selected + hp.shed + hp.budget_shed);
            let batch_dropped = hp.selected.saturating_sub(hp.events);
            let losses = HostLosses {
                tapped: hp.tapped,
                delivered: hp.events,
                sampled_out,
                load_shed: hp.shed,
                budget_shed: hp.budget_shed,
                batch_dropped,
                deduped_retransmit: hp.duplicate_events,
                window_degraded: parts.degraded_events.get(host).copied().unwrap_or(0),
                host_dead: parts.dead_hosts.contains(host),
            };
            debug_assert!(
                losses.reconciles(),
                "host {host}: ledger does not reconcile: {losses:?}"
            );
            hosts.insert(host.clone(), losses);
        }
        LossLedger {
            query_id: profile.query_id,
            hosts,
        }
    }

    /// Does every host reconcile?
    pub fn reconciles(&self) -> bool {
        self.hosts.values().all(HostLosses::reconciles)
    }

    /// True when no event was lost anywhere (every bucket zero on every
    /// host — the clean-run shape).
    pub fn is_all_zero(&self) -> bool {
        self.hosts.values().all(|h| {
            h.total_lost() == 0
                && h.deduped_retransmit == 0
                && h.window_degraded == 0
                && !h.host_dead
        })
    }

    /// Sum one bucket across hosts.
    pub fn total<F: Fn(&HostLosses) -> u64>(&self, f: F) -> u64 {
        self.hosts.values().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(
        host: &str,
        delivered: u64,
        tapped: u64,
        selected: u64,
        shed: u64,
    ) -> QueryProfile {
        profile_with_budget(host, delivered, tapped, selected, shed, 0)
    }

    fn profile_with_budget(
        host: &str,
        delivered: u64,
        tapped: u64,
        selected: u64,
        shed: u64,
        budget_shed: u64,
    ) -> QueryProfile {
        let mut p = QueryProfile::new(9);
        p.observe_batch(
            host,
            0,
            100,
            delivered,
            tapped,
            selected,
            shed,
            budget_shed,
            false,
            None,
        );
        p
    }

    #[test]
    fn clean_run_reconciles_all_zero() {
        let p = profile_with("h1", 50, 50, 50, 0);
        let l = LossLedger::build(&p, &LedgerParts::default());
        assert!(l.reconciles());
        assert!(l.is_all_zero());
        assert_eq!(l.hosts["h1"].delivered, 50);
    }

    #[test]
    fn losses_bucket_by_cause() {
        // tapped 100: 60 selected (10 never arrived), 25 sampled out, 15 shed
        let p = profile_with("h1", 50, 100, 60, 15);
        let mut parts = LedgerParts::default();
        parts.degraded_events.insert("h1".into(), 7);
        parts.dead_hosts.insert("h1".into());
        let l = LossLedger::build(&p, &parts);
        let h = &l.hosts["h1"];
        assert_eq!(h.sampled_out, 25);
        assert_eq!(h.load_shed, 15);
        assert_eq!(h.batch_dropped, 10);
        assert_eq!(h.window_degraded, 7);
        assert!(h.host_dead);
        assert!(h.reconciles());
        assert!(!l.is_all_zero());
        assert_eq!(l.total(|h| h.batch_dropped), 10);
    }

    #[test]
    fn budget_shed_is_its_own_bucket() {
        // tapped 100: 60 selected (5 never arrived), 12 budget-shed,
        // 8 load-shed, 20 sampled out
        let p = profile_with_budget("h1", 55, 100, 60, 8, 12);
        let l = LossLedger::build(&p, &LedgerParts::default());
        let h = &l.hosts["h1"];
        assert_eq!(h.budget_shed, 12);
        assert_eq!(h.load_shed, 8);
        assert_eq!(h.sampled_out, 20);
        assert_eq!(h.batch_dropped, 5);
        assert!(h.reconciles());
        assert_eq!(h.total_lost(), 45);
        assert!(!l.is_all_zero());
    }

    #[test]
    fn duplicates_are_annotations_not_losses() {
        let mut p = profile_with("h1", 50, 50, 50, 0);
        p.observe_duplicate("h1", 20);
        let l = LossLedger::build(&p, &LedgerParts::default());
        let h = &l.hosts["h1"];
        assert_eq!(h.deduped_retransmit, 20);
        assert_eq!(h.total_lost(), 0, "dup copies are not lost events");
        assert!(h.reconciles());
    }

    #[test]
    fn ledger_serializes() {
        let p = profile_with("h1", 5, 10, 6, 2);
        let l = LossLedger::build(&p, &LedgerParts::default());
        let json = serde_json::to_string(&l).unwrap();
        let back: LossLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
