//! Event-lifecycle traces: where did one request's events actually go?
//!
//! Scrub trades completeness for host safety at half a dozen places —
//! sampling, shedding, a lossy network, dedup, degraded windows — and an
//! aggregate counter cannot say *which* hop swallowed a given event. A
//! trace can. A deterministic sampler marks a small fraction of tapped
//! events by request id; marked events accumulate causally-ordered
//! [`TraceSpan`]s at every hop of the pipeline (tap selection on the
//! host, batch enqueue, shipment and retransmission, central ingest,
//! partition routing, window assignment and close), timestamped on the
//! sim clock. Spans ride to ScrubCentral piggybacked on the
//! [`EventBatch`](../../scrub_agent/struct.EventBatch.html)es the agent
//! ships anyway, and central assembles them into per-query trace trees
//! (a [`TraceStore`]) queryable via `scrubql trace <qid> [request-id]`.
//!
//! # Determinism and host impact
//!
//! The sampling decision is a pure function of the request id — a seeded
//! splitmix64 hash compared against a threshold precomputed from
//! `ScrubConfig::trace_sample_rate` — so every host, every partition
//! count and every rerun of a seeded scenario traces exactly the same
//! requests. Tracing must never violate the host-impact contract: the
//! disabled path (`trace_sample_rate == 0`, the default) is a single
//! integer compare against a precomputed threshold of 0, and enabled
//! tracing is bounded by a hard per-host span budget
//! (`ScrubConfig::trace_span_budget`) — once the agent's buffered spans
//! hit the budget, further spans are dropped and counted
//! (`agent.trace_spans_shed`), never allocated.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// Fixed seed for the trace sampler's request-id hash. A constant (not a
/// config knob) so agents, central and any partition count agree on which
/// requests are traced without coordination.
pub const TRACE_SEED: u64 = 0x5c12_abd1_a902_77e5;

/// One hop in an event's lifecycle. The declaration order is the causal
/// pipeline order; [`TraceStore`] sorts same-timestamp spans by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// The application logged the event and it matched a query's
    /// selection at the tap.
    Emit,
    /// The subscription's tap selected the event (predicate passed).
    TapSelect,
    /// The per-event sampler dropped the event (`detail` = 0).
    SampledOut,
    /// Load shedding dropped the event (budget exhausted this second).
    Shed,
    /// The per-host CPU budget tracker dropped the event (shipping it
    /// would have broken `host_cpu_budget` this second).
    BudgetShed,
    /// The event was projected and enqueued into the subscription batch.
    Enqueue,
    /// The batch carrying this event was first shipped (`detail` = seq).
    Send,
    /// The batch was retransmitted (`detail` = attempt number).
    Retransmit,
    /// ScrubCentral ingested the (fresh) batch.
    Ingest,
    /// The router assigned the event to a partition (`detail` =
    /// partition index; machine-local for `partitions >= 2`).
    Route,
    /// The event was assigned to a tumbling window (`detail` = window
    /// start ms).
    WindowAssign,
    /// The window holding the event closed (`detail` = window start ms;
    /// `degraded` windows use [`SpanKind::WindowDegrade`] instead).
    WindowClose,
    /// The window closed while a targeted host was suspected dead.
    WindowDegrade,
}

/// One span of one traced request's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// The traced request.
    pub request_id: u64,
    /// Which hop.
    pub kind: SpanKind,
    /// Sim-clock time of the hop (ms).
    pub at_ms: i64,
    /// Node that recorded the span. Agents leave this empty on the wire
    /// (the enclosing batch already names the host) and central backfills
    /// it at ingest.
    #[serde(default)]
    pub host: String,
    /// Hop-specific detail: seq for [`SpanKind::Send`], attempt for
    /// [`SpanKind::Retransmit`], partition for [`SpanKind::Route`],
    /// window start for the window hops, 0 otherwise.
    #[serde(default)]
    pub detail: i64,
}

impl TraceSpan {
    /// Approximate wire size of one span (piggybacked on a batch).
    pub const APPROX_BYTES: usize = 32;

    /// A span with no host attribution (backfilled at central).
    pub fn new(request_id: u64, kind: SpanKind, at_ms: i64, detail: i64) -> Self {
        TraceSpan {
            request_id,
            kind,
            at_ms,
            host: String::new(),
            detail,
        }
    }
}

/// splitmix64 finalizer — the same mixer the partition router uses, so
/// the hash is cheap and well distributed over sequential request ids.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precompute the sampler threshold for a trace rate in `[0, 1]`.
/// `0` means tracing disabled — the hot-path check is `threshold != 0`.
pub fn trace_threshold(rate: f64) -> u64 {
    if rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

/// The deterministic sampling decision: is this request traced at this
/// threshold? Pure in `(request_id, threshold)` — every node and every
/// partition count agrees.
#[inline]
pub fn should_trace(request_id: u64, threshold: u64) -> bool {
    threshold != 0 && mix(request_id ^ TRACE_SEED) <= threshold
}

/// Default cap on distinct traced requests a [`TraceStore`] retains per
/// query; beyond it new requests are dropped (counted) so a long query
/// cannot grow central's memory unboundedly.
pub const DEFAULT_TRACE_STORE_CAP: usize = 4_096;

/// Per-query trace trees assembled by ScrubCentral: request id → the
/// causally-ordered spans seen so far.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStore {
    /// Max distinct traced requests retained.
    cap: usize,
    /// Spans per traced request (sorted on read, not on insert).
    traces: BTreeMap<u64, Vec<TraceSpan>>,
    /// Window start → traced requests assigned to it, so close/degrade
    /// spans can be fanned out when the router closes the window.
    window_index: BTreeMap<i64, BTreeSet<u64>>,
    /// Spans dropped because the store was at capacity.
    pub dropped_spans: u64,
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_STORE_CAP)
    }
}

impl TraceStore {
    /// Empty store retaining up to `cap` distinct traced requests.
    pub fn new(cap: usize) -> Self {
        TraceStore {
            cap: cap.max(1),
            traces: BTreeMap::new(),
            window_index: BTreeMap::new(),
            dropped_spans: 0,
        }
    }

    /// Number of traced requests held.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no request has been traced yet.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Traced request ids, ascending.
    pub fn request_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.traces.keys().copied()
    }

    /// Total spans across all traced requests.
    pub fn span_count(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// Smallest traced request id with at least one span in the
    /// sim-time interval `(from_ms, to_ms]` — the deterministic
    /// exemplar pick for rolled telemetry points (requests iterate in
    /// `BTreeMap` order, so every partition count agrees). `None` when
    /// no traced request was active in the interval.
    pub fn first_rid_in(&self, from_ms: i64, to_ms: i64) -> Option<u64> {
        self.traces.iter().find_map(|(&rid, spans)| {
            spans
                .iter()
                .any(|s| s.at_ms > from_ms && s.at_ms <= to_ms)
                .then_some(rid)
        })
    }

    /// Add one span, respecting the request cap.
    pub fn add(&mut self, span: TraceSpan) {
        if !self.traces.contains_key(&span.request_id) && self.traces.len() >= self.cap {
            self.dropped_spans += 1;
            return;
        }
        self.traces.entry(span.request_id).or_default().push(span);
    }

    /// Ingest a batch's piggybacked spans, backfilling empty hosts with
    /// the batch's reporting host.
    pub fn ingest_spans(&mut self, spans: Vec<TraceSpan>, batch_host: &str) {
        for mut span in spans {
            if span.host.is_empty() {
                span.host = batch_host.to_string();
            }
            self.add(span);
        }
    }

    /// Record that a traced request's event was assigned to the window
    /// starting at `window_start_ms` (and add the WindowAssign span).
    pub fn assign_window(&mut self, request_id: u64, window_start_ms: i64, at_ms: i64, host: &str) {
        if !self.traces.contains_key(&request_id) {
            return; // not traced (or dropped at cap)
        }
        let newly = self
            .window_index
            .entry(window_start_ms)
            .or_default()
            .insert(request_id);
        if newly {
            self.add(TraceSpan {
                request_id,
                kind: SpanKind::WindowAssign,
                at_ms,
                host: host.to_string(),
                detail: window_start_ms,
            });
        }
    }

    /// The window starting at `window_start_ms` closed: fan a close (or
    /// degrade) span out to every traced request assigned to it, and
    /// forget the window.
    pub fn close_window(&mut self, window_start_ms: i64, at_ms: i64, host: &str, degraded: bool) {
        let Some(rids) = self.window_index.remove(&window_start_ms) else {
            return;
        };
        let kind = if degraded {
            SpanKind::WindowDegrade
        } else {
            SpanKind::WindowClose
        };
        for rid in rids {
            self.add(TraceSpan {
                request_id: rid,
                kind,
                at_ms,
                host: host.to_string(),
                detail: window_start_ms,
            });
        }
    }

    /// The causally-ordered spans of one traced request (sorted by time,
    /// ties broken by pipeline order); `None` when the request was never
    /// traced.
    pub fn trace(&self, request_id: u64) -> Option<Vec<TraceSpan>> {
        let mut spans = self.traces.get(&request_id)?.clone();
        spans.sort_by(|a, b| {
            (a.at_ms, a.kind, a.detail, &a.host).cmp(&(b.at_ms, b.kind, b.detail, &b.host))
        });
        Some(spans)
    }

    /// A deterministic signature of the whole store for differential
    /// tests: per request, the ordered `(kind, at_ms, host)` hops.
    /// `detail` is deliberately excluded — [`SpanKind::Route`]'s partition
    /// index legitimately differs across partition counts.
    pub fn signature(&self) -> BTreeMap<u64, Vec<(SpanKind, i64, String)>> {
        self.traces
            .keys()
            .map(|&rid| {
                let spans = self.trace(rid).unwrap_or_default();
                (
                    rid,
                    spans
                        .into_iter()
                        .map(|s| (s.kind, s.at_ms, s.host))
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_rate_shaped() {
        let t = trace_threshold(0.1);
        let picks: Vec<bool> = (0..100_000u64).map(|r| should_trace(r, t)).collect();
        let again: Vec<bool> = (0..100_000u64).map(|r| should_trace(r, t)).collect();
        assert_eq!(picks, again, "decision must be pure in the request id");
        let n = picks.iter().filter(|&&b| b).count();
        assert!((8_000..=12_000).contains(&n), "10% ± tolerance, got {n}");
        // disabled rate traces nothing and costs one compare
        assert_eq!(trace_threshold(0.0), 0);
        assert!((0..1_000u64).all(|r| !should_trace(r, 0)));
        // full rate traces everything
        assert!((0..1_000u64).all(|r| should_trace(r, trace_threshold(1.0))));
    }

    #[test]
    fn store_orders_spans_causally() {
        let mut s = TraceStore::new(16);
        // inserted out of order, same timestamp: pipeline order wins
        s.add(TraceSpan::new(7, SpanKind::Enqueue, 5, 0));
        s.add(TraceSpan::new(7, SpanKind::Emit, 5, 0));
        s.add(TraceSpan::new(7, SpanKind::TapSelect, 5, 0));
        s.add(TraceSpan::new(7, SpanKind::Ingest, 9, 0));
        let spans = s.trace(7).unwrap();
        let kinds: Vec<SpanKind> = spans.iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Emit,
                SpanKind::TapSelect,
                SpanKind::Enqueue,
                SpanKind::Ingest
            ]
        );
        assert!(s.trace(8).is_none());
    }

    #[test]
    fn first_rid_in_picks_smallest_rid_in_interval() {
        let mut s = TraceStore::new(16);
        s.add(TraceSpan::new(9, SpanKind::Emit, 1_500, 0));
        s.add(TraceSpan::new(4, SpanKind::Emit, 1_800, 0));
        s.add(TraceSpan::new(2, SpanKind::Emit, 3_000, 0));
        // both 4 and 9 are active in (1000, 2000]; smallest rid wins
        assert_eq!(s.first_rid_in(1_000, 2_000), Some(4));
        // interval bounds: (from, to] — 3000 belongs to (2000, 3000]
        assert_eq!(s.first_rid_in(2_000, 3_000), Some(2));
        assert_eq!(s.first_rid_in(3_000, 4_000), None);
    }

    #[test]
    fn store_caps_distinct_requests() {
        let mut s = TraceStore::new(2);
        s.add(TraceSpan::new(1, SpanKind::Emit, 0, 0));
        s.add(TraceSpan::new(2, SpanKind::Emit, 0, 0));
        s.add(TraceSpan::new(3, SpanKind::Emit, 0, 0)); // over cap: dropped
        s.add(TraceSpan::new(1, SpanKind::Ingest, 1, 0)); // existing: kept
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped_spans, 1);
        assert_eq!(s.trace(1).unwrap().len(), 2);
    }

    #[test]
    fn window_close_fans_out_to_assigned_requests() {
        let mut s = TraceStore::new(16);
        s.add(TraceSpan::new(1, SpanKind::Ingest, 10, 0));
        s.add(TraceSpan::new(2, SpanKind::Ingest, 11, 0));
        s.assign_window(1, 0, 10, "central");
        s.assign_window(2, 0, 11, "central");
        s.assign_window(2, 0, 12, "central"); // duplicate assignment: one span
        s.assign_window(9, 0, 12, "central"); // untraced: ignored
        s.close_window(0, 20, "central", false);
        s.close_window(0, 25, "central", false); // already closed: no-op
        for rid in [1u64, 2] {
            let kinds: Vec<SpanKind> = s.trace(rid).unwrap().iter().map(|x| x.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    SpanKind::Ingest,
                    SpanKind::WindowAssign,
                    SpanKind::WindowClose
                ],
                "request {rid}"
            );
        }
        let mut d = TraceStore::new(16);
        d.add(TraceSpan::new(1, SpanKind::Ingest, 10, 0));
        d.assign_window(1, 0, 10, "central");
        d.close_window(0, 20, "central", true);
        let kinds: Vec<SpanKind> = d.trace(1).unwrap().iter().map(|x| x.kind).collect();
        assert_eq!(kinds.last(), Some(&SpanKind::WindowDegrade));
    }

    #[test]
    fn ingest_spans_backfills_host() {
        let mut s = TraceStore::new(16);
        s.ingest_spans(vec![TraceSpan::new(4, SpanKind::Emit, 1, 0)], "bid-DC1-0");
        assert_eq!(s.trace(4).unwrap()[0].host, "bid-DC1-0");
        let sig = s.signature();
        assert_eq!(sig[&4], vec![(SpanKind::Emit, 1, "bid-DC1-0".to_string())]);
    }
}
