//! Multi-resolution telemetry store: retention tiers over the metric
//! snapshot stream, with exemplar-linked rollups.
//!
//! The flat [`MetricsHistory`] ring forgets everything older than
//! `capacity × snapshot interval` — exactly the onset data a long
//! troubleshooting run needs ("when did it start?"). [`TelemetryStore`]
//! subsumes the ring with three bounded tiers:
//!
//! * **raw** — the [`MetricsHistory`] ring itself: full snapshots at
//!   snapshot resolution, per-tick deltas on demand.
//! * **mid** — one [`RolledPoint`] per metric per `mid_factor` raw
//!   intervals (default 10×).
//! * **coarse** — one point per `coarse_factor` raw intervals (default
//!   100×), so a bounded store covers runs two orders of magnitude
//!   longer than the raw ring.
//!
//! Rollup semantics are deterministic and kind-aware: **counter**
//! rollups aggregate the per-tick *deltas* covered by the bucket
//! (sum / min / max / mean); **gauge** rollups keep the last / min /
//! max / mean of the sampled *values*. Every rolled point remembers the
//! raw interval with the largest positive delta and carries an
//! **exemplar** — the trace rid of a traced request active in that
//! interval, resolved lazily by a caller-supplied closure exactly the
//! way alert provenance is — so `scrubql range` links a rolled-up spike
//! straight to `scrubql trace <rid>`.
//!
//! Determinism contract (the PR 9 discipline): rollups are pure
//! functions of the recorded snapshot sequence. Bucket boundaries are
//! counted in ticks from the first accepted snapshot, accumulation is
//! integer-only, and iteration order is `BTreeMap` order — so store
//! contents, [`TelemetryStore::render_range`] output and exemplar
//! choices are byte-identical across seeded runs and across 1 vs N
//! central partitions (for [`partition_invariant`] metrics; the
//! wall-clock and scheduling exemptions are listed there).
//! Snapshots that arrive out of sim-clock order are dropped and
//! counted ([`TelemetryStore::out_of_order`]) rather than silently
//! corrupting deltas.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use scrub_core::config::ScrubConfig;
use serde::{Deserialize, Serialize};

use crate::history::{MetricPoint, MetricsHistory};
use crate::metrics::MetricsSnapshot;

/// Which retention tier a read goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resolution {
    /// The raw snapshot ring: per-tick values and deltas.
    Raw,
    /// Mid tier: one rolled point per `mid_factor` raw intervals.
    Mid,
    /// Coarse tier: one rolled point per `coarse_factor` raw intervals.
    Coarse,
}

impl Resolution {
    /// All resolutions, finest first.
    pub const ALL: [Resolution; 3] = [Resolution::Raw, Resolution::Mid, Resolution::Coarse];

    /// Stable lowercase name (`raw` / `mid` / `coarse`).
    pub fn as_str(self) -> &'static str {
        match self {
            Resolution::Raw => "raw",
            Resolution::Mid => "mid",
            Resolution::Coarse => "coarse",
        }
    }

    /// Parse the stable name back; `None` for anything else.
    pub fn parse(s: &str) -> Option<Resolution> {
        match s {
            "raw" => Some(Resolution::Raw),
            "mid" => Some(Resolution::Mid),
            "coarse" => Some(Resolution::Coarse),
            _ => None,
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a metric's raw ticks fold into a rolled point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RollupKind {
    /// Monotone counter: aggregate the per-tick deltas.
    Counter,
    /// Instantaneous gauge: aggregate the sampled values.
    Gauge,
}

impl RollupKind {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            RollupKind::Counter => "counter",
            RollupKind::Gauge => "gauge",
        }
    }
}

/// One downsampled point of a metric's series: the aggregate of the raw
/// intervals in `(start_ms, at_ms]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolledPoint {
    /// Bucket start: sim time of the snapshot *before* the first raw
    /// interval covered (exclusive).
    pub start_ms: i64,
    /// Bucket end: sim time of the last snapshot covered (inclusive).
    pub at_ms: i64,
    /// How the point was folded (decides what min/max/mean range over).
    pub kind: RollupKind,
    /// Net change over the bucket (`last − first`); for counters this
    /// equals the sum of the per-tick deltas covered.
    pub delta: i64,
    /// Metric value at bucket end.
    pub last: i64,
    /// Counters: smallest per-tick delta. Gauges: smallest value.
    pub min: i64,
    /// Counters: largest per-tick delta. Gauges: largest value.
    pub max: i64,
    /// Mean (of deltas for counters, of values for gauges) in
    /// thousandths, truncated toward zero — integer-only so rollups are
    /// byte-stable.
    pub mean_milli: i64,
    /// Start of the raw interval with the largest positive delta
    /// (exclusive); 0 when no tick moved the metric up.
    pub max_from_ms: i64,
    /// End of that max-delta interval (inclusive); 0 when none.
    pub max_at_ms: i64,
    /// Trace rid of a traced request active in the max-delta interval,
    /// when the resolver found one — the link to `scrubql trace`.
    pub exemplar: Option<u64>,
}

/// Per-metric accumulation state for a tier's open bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Acc {
    kind: RollupKind,
    /// Value at bucket start (0 when the metric appeared mid-bucket —
    /// consistent with [`MetricsHistory::series`], which reads absent
    /// metrics as 0).
    first: i64,
    last: i64,
    min: i64,
    max: i64,
    /// Counters: running sum of deltas. Gauges: running sum of values.
    sum: i64,
    /// Ticks folded so far (backfilled zeros included).
    n: u32,
    max_delta: i64,
    max_from_ms: i64,
    max_at_ms: i64,
}

impl Acc {
    /// Fresh accumulator; `backfill` ticks of implicit zeros cover the
    /// bucket prefix before the metric first appeared (in which case the
    /// bucket-start value is the implicit 0, not `v0`).
    fn new(kind: RollupKind, backfill: u32, v0: i64) -> Self {
        let (min, max) = if backfill > 0 {
            (0, 0)
        } else {
            (i64::MAX, i64::MIN)
        };
        Acc {
            kind,
            first: if backfill > 0 { 0 } else { v0 },
            last: 0,
            min,
            max,
            sum: 0,
            n: backfill,
            max_delta: 0,
            max_from_ms: 0,
            max_at_ms: 0,
        }
    }

    /// Fold one raw interval `(from_ms, to_ms]`: previous value `v0`,
    /// new value `v1`.
    fn step(&mut self, v0: i64, v1: i64, from_ms: i64, to_ms: i64) {
        let d = v1 - v0;
        let folded = match self.kind {
            RollupKind::Counter => d,
            RollupKind::Gauge => v1,
        };
        self.min = self.min.min(folded);
        self.max = self.max.max(folded);
        self.sum += folded;
        self.last = v1;
        self.n += 1;
        // Strictly-greater keeps the earliest max interval on ties —
        // a deterministic exemplar pick.
        if d > self.max_delta {
            self.max_delta = d;
            self.max_from_ms = from_ms;
            self.max_at_ms = to_ms;
        }
    }

    fn seal(&self, start_ms: i64, at_ms: i64, exemplar: Option<u64>) -> RolledPoint {
        let n = self.n.max(1) as i128;
        RolledPoint {
            start_ms,
            at_ms,
            kind: self.kind,
            delta: self.last - self.first,
            last: self.last,
            min: if self.min == i64::MAX { 0 } else { self.min },
            max: if self.max == i64::MIN { 0 } else { self.max },
            mean_milli: (self.sum as i128 * 1_000 / n) as i64,
            max_from_ms: self.max_from_ms,
            max_at_ms: self.max_at_ms,
            exemplar,
        }
    }
}

/// One downsampled tier: bounded per-metric rings of rolled points plus
/// the open bucket's accumulators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Tier {
    /// Raw intervals per bucket.
    factor: usize,
    /// Rolled points retained per metric.
    cap: usize,
    /// Raw intervals folded into the open bucket so far.
    ticks: usize,
    /// Open bucket start (sim time of the snapshot before its first
    /// interval).
    start_ms: i64,
    acc: BTreeMap<String, Acc>,
    series: BTreeMap<String, VecDeque<RolledPoint>>,
}

impl Tier {
    fn new(factor: usize, cap: usize) -> Self {
        Tier {
            factor: factor.max(2),
            cap: cap.max(2),
            ticks: 0,
            start_ms: 0,
            acc: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }

    /// Fold one raw interval; on bucket completion seal every metric's
    /// point, resolving exemplars through `resolve`.
    fn fold<F>(&mut self, prev: &MetricsSnapshot, snap: &MetricsSnapshot, mut resolve: F)
    where
        F: FnMut(&str, i64, i64) -> Option<u64>,
    {
        if self.ticks == 0 {
            self.start_ms = prev.at_ms;
        }
        let backfill = self.ticks as u32;
        for (name, &v1) in &snap.counters {
            let v0 = prev.counters.get(name).map(|&v| v as i64).unwrap_or(0);
            self.acc
                .entry(name.clone())
                .or_insert_with(|| Acc::new(RollupKind::Counter, backfill, v0))
                .step(v0, v1 as i64, prev.at_ms, snap.at_ms);
        }
        for (name, &v1) in &snap.gauges {
            let v0 = prev.gauges.get(name).copied().unwrap_or(0);
            self.acc
                .entry(name.clone())
                .or_insert_with(|| Acc::new(RollupKind::Gauge, backfill, v0))
                .step(v0, v1, prev.at_ms, snap.at_ms);
        }
        self.ticks += 1;
        if self.ticks < self.factor {
            return;
        }
        for (name, acc) in &self.acc {
            let exemplar = if acc.max_delta > 0 {
                resolve(name, acc.max_from_ms, acc.max_at_ms)
            } else {
                None
            };
            let ring = self.series.entry(name.clone()).or_default();
            if ring.len() == self.cap {
                ring.pop_front();
            }
            ring.push_back(acc.seal(self.start_ms, snap.at_ms, exemplar));
        }
        self.acc.clear();
        self.ticks = 0;
        self.start_ms = snap.at_ms;
    }

    fn points(&self, metric: &str) -> Vec<RolledPoint> {
        self.series
            .get(metric)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    fn covered_range(&self) -> Option<(i64, i64)> {
        let start = self
            .series
            .values()
            .filter_map(|r| r.front())
            .map(|p| p.start_ms)
            .min()?;
        let end = self
            .series
            .values()
            .filter_map(|r| r.back())
            .map(|p| p.at_ms)
            .max()?;
        Some((start, end))
    }

    fn point_count(&self) -> usize {
        self.series.values().map(VecDeque::len).sum()
    }
}

/// The multi-resolution telemetry store: raw ring + mid + coarse tiers.
///
/// See the [module docs](self) for semantics. Feed it one snapshot per
/// observation tick via [`record_with`](Self::record_with) (or
/// [`record`](Self::record) when no exemplar resolver is available) and
/// read any tier back with an explicit [`Resolution`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryStore {
    raw: MetricsHistory,
    mid: Tier,
    coarse: Tier,
    out_of_order: u64,
}

impl TelemetryStore {
    /// Store with a raw ring of `raw_cap` snapshots and two rollup
    /// tiers of `mid_factor`× / `coarse_factor`× the snapshot interval,
    /// each retaining up to `tier_cap` rolled points per metric.
    pub fn new(raw_cap: usize, mid_factor: usize, coarse_factor: usize, tier_cap: usize) -> Self {
        TelemetryStore {
            raw: MetricsHistory::new(raw_cap),
            mid: Tier::new(mid_factor, tier_cap),
            coarse: Tier::new(coarse_factor.max(mid_factor), tier_cap),
            out_of_order: 0,
        }
    }

    /// Store sized from the config knobs (`obs_history_len`,
    /// `tsdb_mid_factor`, `tsdb_coarse_factor`, `tsdb_tier_cap`).
    pub fn from_config(config: &ScrubConfig) -> Self {
        Self::new(
            config.obs_history_len,
            config.tsdb_mid_factor,
            config.tsdb_coarse_factor,
            config.tsdb_tier_cap,
        )
    }

    /// Record a snapshot with no exemplar resolution (tests, tools).
    pub fn record(&mut self, snap: MetricsSnapshot) -> bool {
        self.record_with(snap, |_, _, _| None)
    }

    /// Record one periodic snapshot, folding its deltas into every
    /// tier. `resolve(metric, from_ms, to_ms)` is called lazily — only
    /// when a bucket seals and only for metrics that moved up — and
    /// should return the trace rid of a traced request active in the
    /// raw interval `(from_ms, to_ms]`.
    ///
    /// Returns `false` (and counts it in [`out_of_order`](Self::out_of_order))
    /// when `snap` does not advance the sim clock: unlike the bare
    /// ring's same-time replace, the store drops equal-time re-records
    /// too, so tier contents stay an exact aggregate of the accepted
    /// delta sequence.
    pub fn record_with<F>(&mut self, snap: MetricsSnapshot, mut resolve: F) -> bool
    where
        F: FnMut(&str, i64, i64) -> Option<u64>,
    {
        if let Some(prev) = self.raw.latest() {
            if snap.at_ms <= prev.at_ms {
                self.out_of_order += 1;
                return false;
            }
            let prev = prev.clone();
            self.mid.fold(&prev, &snap, &mut resolve);
            self.coarse.fold(&prev, &snap, &mut resolve);
        }
        self.raw.record(snap);
        true
    }

    /// The raw tier as the classic snapshot ring.
    pub fn raw(&self) -> &MetricsHistory {
        &self.raw
    }

    /// Snapshots dropped because they did not advance the sim clock.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Raw intervals folded per bucket at `res` (1 for raw).
    pub fn tier_factor(&self, res: Resolution) -> usize {
        match res {
            Resolution::Raw => 1,
            Resolution::Mid => self.mid.factor,
            Resolution::Coarse => self.coarse.factor,
        }
    }

    /// Points retained per metric at `res`.
    pub fn tier_cap(&self, res: Resolution) -> usize {
        match res {
            Resolution::Raw => self.raw.capacity(),
            Resolution::Mid => self.mid.cap,
            Resolution::Coarse => self.coarse.cap,
        }
    }

    /// Metric names known to the store (from the newest raw snapshot),
    /// sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let Some(snap) = self.raw.latest() else {
            return Vec::new();
        };
        let mut names: Vec<String> = snap.counters.keys().cloned().collect();
        names.extend(snap.gauges.keys().cloned());
        names.sort();
        names
    }

    /// The value series of `metric` at `res` (rolled tiers report the
    /// bucket-end value), oldest to newest.
    pub fn series(&self, metric: &str, res: Resolution) -> Vec<MetricPoint> {
        match res {
            Resolution::Raw => self.raw.series(metric),
            _ => self
                .points(metric, res)
                .iter()
                .map(|p| MetricPoint {
                    at_ms: p.at_ms,
                    value: p.last,
                })
                .collect(),
        }
    }

    /// The per-interval delta series of `metric` at `res` (rolled tiers
    /// report the net change per bucket), oldest to newest.
    pub fn deltas(&self, metric: &str, res: Resolution) -> Vec<MetricPoint> {
        match res {
            Resolution::Raw => self.raw.deltas(metric),
            _ => self
                .points(metric, res)
                .iter()
                .map(|p| MetricPoint {
                    at_ms: p.at_ms,
                    value: p.delta,
                })
                .collect(),
        }
    }

    /// The rolled points of `metric` at `res`, oldest to newest. Raw
    /// deltas are synthesized into degenerate one-interval points (no
    /// exemplar) so callers can render any tier uniformly.
    pub fn points(&self, metric: &str, res: Resolution) -> Vec<RolledPoint> {
        match res {
            Resolution::Raw => {
                let series = self.raw.series(metric);
                let kind = self.kind_of(metric);
                series
                    .windows(2)
                    .map(|w| {
                        let d = w[1].value - w[0].value;
                        let folded = match kind {
                            RollupKind::Counter => d,
                            RollupKind::Gauge => w[1].value,
                        };
                        RolledPoint {
                            start_ms: w[0].at_ms,
                            at_ms: w[1].at_ms,
                            kind,
                            delta: d,
                            last: w[1].value,
                            min: folded,
                            max: folded,
                            mean_milli: folded * 1_000,
                            max_from_ms: if d > 0 { w[0].at_ms } else { 0 },
                            max_at_ms: if d > 0 { w[1].at_ms } else { 0 },
                            exemplar: None,
                        }
                    })
                    .collect()
            }
            Resolution::Mid => self.mid.points(metric),
            Resolution::Coarse => self.coarse.points(metric),
        }
    }

    /// Sim-time span `(start, end]` covered by the tier at `res`
    /// (oldest bucket start to newest bucket end, across all metrics);
    /// `None` while empty.
    pub fn covered_range(&self, res: Resolution) -> Option<(i64, i64)> {
        match res {
            Resolution::Raw => {
                let start = self.raw.iter().next()?.at_ms;
                let end = self.raw.latest()?.at_ms;
                Some((start, end))
            }
            Resolution::Mid => self.mid.covered_range(),
            Resolution::Coarse => self.coarse.covered_range(),
        }
    }

    /// Total points held at `res` across all metrics — the
    /// bounded-memory figure (≤ metrics × tier cap by construction).
    pub fn point_count(&self, res: Resolution) -> usize {
        match res {
            Resolution::Raw => {
                // one "point" per metric per retained snapshot
                self.raw
                    .iter()
                    .map(|s| s.counters.len() + s.gauges.len())
                    .sum()
            }
            Resolution::Mid => self.mid.point_count(),
            Resolution::Coarse => self.coarse.point_count(),
        }
    }

    /// The classic-kind of `metric` in the newest snapshot (gauge wins
    /// only when no counter of that name exists; unknown names read as
    /// counters, matching the zero-series convention).
    fn kind_of(&self, metric: &str) -> RollupKind {
        match self.raw.latest() {
            Some(s) if !s.counters.contains_key(metric) && s.gauges.contains_key(metric) => {
                RollupKind::Gauge
            }
            _ => RollupKind::Counter,
        }
    }

    /// Byte-stable text render of `metric`'s series at `res`, points at
    /// or after `since` (sim ms) only. The shared renderer behind
    /// `scrubql range`, experiment artifacts and the golden tests —
    /// identical across seeded runs and partition counts for
    /// partition-invariant metrics.
    pub fn render_range(&self, metric: &str, res: Resolution, since: Option<i64>) -> String {
        let mut out = String::new();
        let points = self.points(metric, res);
        let shown: Vec<&RolledPoint> = points
            .iter()
            .filter(|p| since.is_none_or(|s| p.at_ms >= s))
            .collect();
        let cover = match self.covered_range(res) {
            Some((a, b)) => format!("[{a} ms, {b} ms]"),
            None => "[empty]".to_string(),
        };
        out.push_str(&format!(
            "range {metric} res={res} bucket={}x cover={cover} points={}\n",
            self.tier_factor(res),
            shown.len(),
        ));
        if shown.is_empty() {
            out.push_str("  (no points)\n");
            return out;
        }
        out.push_str(&format!(
            "  {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}  {}\n",
            "end_ms", "delta", "last", "min", "max", "mean", "exemplar"
        ));
        for p in shown {
            let ex = match p.exemplar {
                Some(rid) => format!("rid={rid}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}  {}\n",
                p.at_ms,
                p.delta,
                p.last,
                p.min,
                p.max,
                fmt_milli(p.mean_milli),
                ex,
            ));
        }
        out
    }
}

/// Whether a metric is part of the partition-invariance contract:
/// `true` for every metric whose series must be byte-identical across
/// seeded runs and across 1 vs N central partitions. The exemptions are
/// the wall-clock `_ns` gauges, `central.ingest_backpressure` (queue
/// pressure is thread-scheduling dependent) and the `executor.*`
/// scheduling counters (barriers per advance depend on the backend's
/// partition count by construction). Used by the `scrub_metric`
/// meta-stream, the golden/parallel suites and experiment artifacts so
/// they all agree on the exempt set.
pub fn partition_invariant(metric: &str) -> bool {
    !metric.ends_with("_ns")
        && metric != "central.ingest_backpressure"
        && !metric.starts_with("executor.")
}

/// Render a thousandths-scaled integer as a fixed 3-decimal number
/// (`1500` → `1.500`, `-250` → `-0.250`) — byte-stable, no float.
pub fn fmt_milli(milli: i64) -> String {
    let sign = if milli < 0 { "-" } else { "" };
    let abs = milli.unsigned_abs();
    format!("{sign}{}.{:03}", abs / 1_000, abs % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_ms: i64, c: u64, g: i64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            at_ms,
            ..Default::default()
        };
        s.counters.insert("c".into(), c);
        s.gauges.insert("g".into(), g);
        s
    }

    /// 5 ticks after the baseline → one mid bucket (factor 5).
    fn filled_store() -> TelemetryStore {
        let mut t = TelemetryStore::new(64, 5, 10, 8);
        // counter deltas: 4, 1, 10, 2, 3 — gauge values: 7, -2, 9, 9, 4
        let cs = [0u64, 4, 5, 15, 17, 20];
        let gs = [3i64, 7, -2, 9, 9, 4];
        for (i, (&c, &g)) in cs.iter().zip(gs.iter()).enumerate() {
            assert!(t.record(snap(i as i64 * 1_000, c, g)));
        }
        t
    }

    #[test]
    fn counter_rollup_aggregates_deltas() {
        let t = filled_store();
        let pts = t.points("c", Resolution::Mid);
        assert_eq!(pts.len(), 1);
        let p = pts[0];
        assert_eq!(p.kind, RollupKind::Counter);
        assert_eq!((p.start_ms, p.at_ms), (0, 5_000));
        assert_eq!(p.delta, 20); // sum of deltas = last − first
        assert_eq!(p.last, 20);
        assert_eq!((p.min, p.max), (1, 10));
        assert_eq!(p.mean_milli, 4_000); // 20 / 5 ticks
        assert_eq!((p.max_from_ms, p.max_at_ms), (2_000, 3_000));
    }

    #[test]
    fn gauge_rollup_keeps_last_min_max_mean() {
        let t = filled_store();
        let p = t.points("g", Resolution::Mid)[0];
        assert_eq!(p.kind, RollupKind::Gauge);
        assert_eq!(p.last, 4);
        assert_eq!((p.min, p.max), (-2, 9));
        assert_eq!(p.mean_milli, 5_400); // (7 − 2 + 9 + 9 + 4) / 5 = 5.4
        assert_eq!(p.delta, 4 - 3); // last − value at bucket start
                                    // largest positive step was −2 → 9 at t=3000
        assert_eq!((p.max_from_ms, p.max_at_ms), (2_000, 3_000));
    }

    #[test]
    fn out_of_order_and_equal_time_snapshots_are_dropped_and_counted() {
        let mut t = TelemetryStore::new(8, 2, 4, 4);
        assert!(t.record(snap(1_000, 1, 0)));
        assert!(!t.record(snap(500, 9, 0))); // late
        assert!(!t.record(snap(1_000, 9, 0))); // equal time
        assert_eq!(t.out_of_order(), 2);
        assert!(t.record(snap(2_000, 3, 0)));
        // the dropped snapshots left no trace in the raw tier
        assert_eq!(t.raw().latest().unwrap().counters["c"], 3);
        assert_eq!(t.deltas("c", Resolution::Raw)[0].value, 2);
    }

    #[test]
    fn tiers_are_bounded_and_cover_more_than_raw() {
        let mut t = TelemetryStore::new(4, 2, 4, 3);
        for i in 0..40 {
            t.record(snap(i * 1_000, (i * 2) as u64, i));
        }
        // raw ring holds 4 snapshots; tier rings hold ≤ cap points
        assert_eq!(t.raw().len(), 4);
        assert!(t.points("c", Resolution::Mid).len() <= 3);
        assert!(t.points("c", Resolution::Coarse).len() <= 3);
        let (raw_a, raw_b) = t.covered_range(Resolution::Raw).unwrap();
        let (co_a, co_b) = t.covered_range(Resolution::Coarse).unwrap();
        assert!(
            co_b - co_a > raw_b - raw_a,
            "coarse tier spans further back"
        );
        // bounded-memory figure: ≤ metrics × cap
        assert!(t.point_count(Resolution::Coarse) <= 2 * 3);
    }

    #[test]
    fn metric_appearing_mid_bucket_backfills_zeros() {
        let mut t = TelemetryStore::new(16, 4, 8, 4);
        t.record(snap(0, 0, 0));
        t.record(snap(1_000, 5, 0));
        t.record(snap(2_000, 5, 0));
        // "late" appears at tick 3 of 4
        let mut s = snap(3_000, 6, 0);
        s.counters.insert("late".into(), 7);
        t.record(s);
        let mut s = snap(4_000, 8, 0);
        s.counters.insert("late".into(), 7);
        t.record(s);
        let p = t.points("late", Resolution::Mid)[0];
        // deltas seen: 0 (backfill), 0 (backfill), 7, 0
        assert_eq!(p.delta, 7);
        assert_eq!((p.min, p.max), (0, 7));
        assert_eq!(p.mean_milli, 1_750);
    }

    #[test]
    fn exemplar_resolver_gets_the_max_delta_interval() {
        let mut t = TelemetryStore::new(16, 3, 6, 4);
        let mut calls: Vec<(String, i64, i64)> = Vec::new();
        let cs = [0u64, 1, 9, 10];
        for (i, &c) in cs.iter().enumerate() {
            t.record_with(snap(i as i64 * 1_000, c, 0), |m, a, b| {
                calls.push((m.to_string(), a, b));
                Some(42)
            });
        }
        let p = t.points("c", Resolution::Mid)[0];
        assert_eq!(p.exemplar, Some(42));
        assert_eq!((p.max_from_ms, p.max_at_ms), (1_000, 2_000));
        // called once for the counter (the flat gauge never moved up)
        assert_eq!(calls, vec![("c".to_string(), 1_000, 2_000)]);
    }

    #[test]
    fn series_and_deltas_read_through_resolutions() {
        let t = filled_store();
        assert_eq!(t.series("c", Resolution::Raw).len(), 6);
        assert_eq!(t.deltas("c", Resolution::Raw).len(), 5);
        let mid = t.deltas("c", Resolution::Mid);
        assert_eq!(mid.len(), 1);
        assert_eq!((mid[0].at_ms, mid[0].value), (5_000, 20));
        assert_eq!(t.series("g", Resolution::Mid)[0].value, 4);
        // coarse bucket (10 ticks) has not sealed yet
        assert!(t.deltas("c", Resolution::Coarse).is_empty());
    }

    #[test]
    fn render_range_is_byte_stable_and_filters_since() {
        let t = filled_store();
        let a = t.render_range("c", Resolution::Mid, None);
        let b = t.render_range("c", Resolution::Mid, None);
        assert_eq!(a, b);
        assert!(a.starts_with("range c res=mid bucket=5x cover=[0 ms, 5000 ms] points=1"));
        assert!(a.contains("4.000")); // mean delta
        let empty = t.render_range("c", Resolution::Mid, Some(9_000));
        assert!(empty.contains("points=0"));
        assert!(empty.contains("(no points)"));
        let raw = t.render_range("c", Resolution::Raw, Some(4_000));
        assert!(raw.contains("points=2"));
    }

    #[test]
    fn store_serialization_round_trips() {
        let t = filled_store();
        let json = serde_json::to_string(&t).unwrap();
        let back: TelemetryStore = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // byte-stable serialization: BTreeMap ordering makes re-encoding
        // deterministic
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn partition_invariance_exempts_wall_clock_and_scheduling_metrics() {
        assert!(partition_invariant("central.events_ingested"));
        assert!(partition_invariant("ledger.batch_dropped"));
        assert!(partition_invariant("central.hosts_suspected"));
        assert!(!partition_invariant("central.assemble_ns"));
        assert!(!partition_invariant("central.ingest_backpressure"));
        assert!(!partition_invariant("executor.advance_barriers"));
        assert!(!partition_invariant("executor.p0.busy_ns"));
    }

    #[test]
    fn fmt_milli_renders_fixed_decimals() {
        assert_eq!(fmt_milli(0), "0.000");
        assert_eq!(fmt_milli(1_500), "1.500");
        assert_eq!(fmt_milli(-250), "-0.250");
        assert_eq!(fmt_milli(-12_345), "-12.345");
    }
}
