//! Service registry: membership lookups over node metadata.
//!
//! Plays the role ZooKeeper-style coordination plays in the paper's
//! deployment — the query server consults it to resolve the `@[...]`
//! target clause into a concrete host set.

use std::collections::HashMap;

use crate::sim::{NodeId, NodeMeta};

/// Immutable snapshot of cluster membership.
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    entries: Vec<(NodeId, NodeMeta)>,
    by_name: HashMap<String, NodeId>,
}

impl ServiceRegistry {
    /// Build a registry from `(id, meta)` pairs.
    pub fn new(entries: Vec<(NodeId, NodeMeta)>) -> Self {
        let by_name = entries
            .iter()
            .map(|(id, m)| (m.name.clone(), *id))
            .collect();
        ServiceRegistry { entries, by_name }
    }

    /// Build from a full metadata slice (ids are positional).
    pub fn from_metas(metas: &[NodeMeta]) -> Self {
        Self::new(
            metas
                .iter()
                .enumerate()
                .map(|(i, m)| (NodeId(i as u32), m.clone()))
                .collect(),
        )
    }

    /// All registered nodes.
    pub fn all(&self) -> impl Iterator<Item = &(NodeId, NodeMeta)> {
        self.entries.iter()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Nodes running `service`.
    pub fn in_service(&self, service: &str) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|(_, m)| m.service.eq_ignore_ascii_case(service))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Nodes residing in data center `dc`.
    pub fn in_dc(&self, dc: &str) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|(_, m)| m.dc.eq_ignore_ascii_case(dc))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Node by host name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Metadata of a node.
    pub fn meta(&self, id: NodeId) -> Option<&NodeMeta> {
        self.entries.iter().find(|(i, _)| *i == id).map(|(_, m)| m)
    }

    /// Distinct service names.
    pub fn services(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .entries
            .iter()
            .map(|(_, m)| m.service.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ServiceRegistry {
        ServiceRegistry::from_metas(&[
            NodeMeta::new("bid-1", "BidServers", "DC1"),
            NodeMeta::new("bid-2", "BidServers", "DC2"),
            NodeMeta::new("ad-1", "AdServers", "DC1"),
        ])
    }

    #[test]
    fn lookups() {
        let r = registry();
        assert_eq!(r.len(), 3);
        assert_eq!(r.in_service("BidServers").len(), 2);
        assert_eq!(r.in_service("bidservers").len(), 2); // case-insensitive
        assert_eq!(r.in_dc("DC1").len(), 2);
        assert_eq!(r.by_name("ad-1"), Some(NodeId(2)));
        assert_eq!(r.by_name("nope"), None);
        assert_eq!(r.meta(NodeId(0)).unwrap().name, "bid-1");
        assert_eq!(r.services(), vec!["AdServers", "BidServers"]);
    }

    #[test]
    fn empty_registry() {
        let r = ServiceRegistry::default();
        assert!(r.is_empty());
        assert!(r.in_service("X").is_empty());
    }
}
