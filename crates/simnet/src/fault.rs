//! Fault-injection plane for the deterministic simulator.
//!
//! The paper's setting is a production ad platform where hosts crash,
//! links lose messages, and latency spikes mid-query (§4.3 discusses
//! ScrubDispatcher fail-over; §5 reports results from a platform where
//! partial failure is the steady state). This module models those faults
//! *deterministically*: a [`FaultPlan`] describes per-link drop
//! probabilities, time-windowed partitions, latency jitter spikes, and
//! node crash/restart windows, and the scheduler consults it on every
//! send and delivery.
//!
//! Determinism contract:
//!
//! - Faults draw from a **dedicated** RNG seeded by [`FaultPlan::seed`],
//!   never from the simulation RNG the nodes share, and a draw happens
//!   only when a matching probabilistic rule is active. A plan with no
//!   active rules therefore yields a byte-identical execution to running
//!   with no plan at all.
//! - The same seed and the same plan always produce the identical fault
//!   schedule, so chaos experiments are exactly reproducible.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::NodeMeta;
use crate::time::SimTime;

/// Selects a set of nodes by metadata; both endpoints of a link rule are
/// selected this way, mirroring the `@[...]` target clause of ScrubQL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSel {
    /// Matches every node.
    Any,
    /// Matches the node with this host name.
    Host(String),
    /// Matches all nodes of a service (e.g. `"BidServers"`).
    Service(String),
    /// Matches all nodes in a data center (e.g. `"DC2"`).
    Dc(String),
}

impl NodeSel {
    /// Does this selector match the node described by `meta`?
    pub fn matches(&self, meta: &NodeMeta) -> bool {
        match self {
            NodeSel::Any => true,
            NodeSel::Host(name) => meta.name == *name,
            NodeSel::Service(svc) => meta.service == *svc,
            NodeSel::Dc(dc) => meta.dc == *dc,
        }
    }
}

impl std::fmt::Display for NodeSel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeSel::Any => write!(f, "*"),
            NodeSel::Host(h) => write!(f, "host:{h}"),
            NodeSel::Service(s) => write!(f, "service:{s}"),
            NodeSel::Dc(d) => write!(f, "dc:{d}"),
        }
    }
}

/// Probabilistic message loss on a directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropRule {
    pub from: NodeSel,
    pub to: NodeSel,
    /// Probability in `[0, 1]` that a matching message is lost in flight.
    pub p: f64,
}

/// Total loss between two node sets during a virtual-time window
/// (both directions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    pub a: NodeSel,
    pub b: NodeSel,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl Partition {
    fn active(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }

    fn severs(&self, now: SimTime, from: &NodeMeta, to: &NodeMeta) -> bool {
        self.active(now)
            && ((self.a.matches(from) && self.b.matches(to))
                || (self.b.matches(from) && self.a.matches(to)))
    }
}

/// Extra one-way latency on a directed link during a window: a fixed
/// component plus a uniformly-drawn jitter component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JitterSpike {
    pub from: NodeSel,
    pub to: NodeSel,
    /// Window start (inclusive).
    pub window_from: SimTime,
    /// Window end (exclusive).
    pub window_until: SimTime,
    /// Fixed extra latency, µs.
    pub extra_us: i64,
    /// Additional uniform jitter in `[0, jitter_us]`, µs.
    pub jitter_us: i64,
}

impl JitterSpike {
    fn active(&self, now: SimTime) -> bool {
        self.window_from <= now && now < self.window_until
    }
}

/// A node crash: the host processes nothing in `[down_from, up_at)`.
/// Messages addressed to it are lost, and every timer it armed before the
/// crash dies with the old incarnation. If `up_at` is set, the node
/// restarts there: its incarnation is bumped and `on_start` runs again.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// Host name (matches [`NodeMeta::name`]).
    pub host: String,
    pub down_from: SimTime,
    /// `None` means the host never comes back.
    pub up_at: Option<SimTime>,
}

impl CrashWindow {
    /// Is the host down at `now` under this window?
    pub fn down(&self, now: SimTime) -> bool {
        self.down_from <= now && self.up_at.is_none_or(|up| now < up)
    }
}

/// Why the fault plane swallowed a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A [`DropRule`] fired.
    Random,
    /// An active [`Partition`] severed the link.
    Partition,
    /// The destination host was down when the message arrived.
    HostDown,
}

/// The verdict for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver, with this much extra one-way latency (µs).
    Deliver { extra_us: i64 },
    /// Lose the message.
    Drop(DropReason),
}

/// Counters for everything the fault plane did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages lost to a [`DropRule`].
    pub dropped_random: u64,
    /// Messages lost to an active [`Partition`].
    pub dropped_partition: u64,
    /// Messages that arrived while the destination host was down.
    pub dropped_host_down: u64,
    /// Timer events discarded because they were armed by a previous
    /// incarnation of a since-restarted node.
    pub stale_timers: u64,
    /// Messages delayed by a [`JitterSpike`].
    pub delayed: u64,
    /// Node restarts executed.
    pub restarts: u64,
}

impl FaultStats {
    /// Total messages lost to any cause.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_random + self.dropped_partition + self.dropped_host_down
    }
}

/// The full fault schedule for a run. Built up-front for scripted chaos
/// experiments, or mutated live (via [`crate::Sim`]'s fault API) from the
/// CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG.
    pub seed: u64,
    /// Probabilistic loss rules; the first matching rule wins.
    pub drops: Vec<DropRule>,
    /// Time-windowed bidirectional partitions.
    pub partitions: Vec<Partition>,
    /// Time-windowed latency spikes.
    pub jitters: Vec<JitterSpike>,
    /// Crash/restart windows.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// An empty plan: injects nothing, draws nothing.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drops: Vec::new(),
            partitions: Vec::new(),
            jitters: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Lose messages from `from` to `to` with probability `p`.
    pub fn drop(mut self, from: NodeSel, to: NodeSel, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drops.push(DropRule { from, to, p });
        self
    }

    /// Sever all traffic between `a` and `b` during `[from, until)`.
    pub fn partition(mut self, a: NodeSel, b: NodeSel, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Add `extra_us + U[0, jitter_us]` one-way latency from `from` to
    /// `to` during `[from_t, until)`.
    pub fn jitter(
        mut self,
        from: NodeSel,
        to: NodeSel,
        from_t: SimTime,
        until: SimTime,
        extra_us: i64,
        jitter_us: i64,
    ) -> Self {
        self.jitters.push(JitterSpike {
            from,
            to,
            window_from: from_t,
            window_until: until,
            extra_us,
            jitter_us,
        });
        self
    }

    /// Crash `host` at `down_from`; restart it at `up_at` if given.
    pub fn crash(
        mut self,
        host: impl Into<String>,
        down_from: SimTime,
        up_at: Option<SimTime>,
    ) -> Self {
        self.crashes.push(CrashWindow {
            host: host.into(),
            down_from,
            up_at,
        });
        self
    }

    /// True when the plan can never inject anything (no rules at all, or
    /// only zero-probability drop rules).
    pub fn is_inert(&self) -> bool {
        self.drops.iter().all(|d| d.p == 0.0)
            && self.partitions.is_empty()
            && self.jitters.is_empty()
            && self.crashes.is_empty()
    }

    /// Is `host` down at `now` under this plan?
    pub fn host_down(&self, host: &str, now: SimTime) -> bool {
        self.crashes.iter().any(|c| c.host == host && c.down(now))
    }
}

/// Live fault-plane state carried by the simulator: the plan, the
/// dedicated RNG, and the counters.
#[derive(Debug)]
pub struct FaultState {
    pub plan: FaultPlan,
    rng: StdRng,
    pub stats: FaultStats,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultState {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// Decide what happens to a message sent at `now` from `from` to
    /// `to`. Partitions are checked first (no randomness), then drop
    /// rules (first match wins; the RNG is consulted only when a matching
    /// rule has `p > 0`), then jitter spikes.
    pub fn judge_send(&mut self, now: SimTime, from: &NodeMeta, to: &NodeMeta) -> SendFate {
        if self.plan.partitions.iter().any(|p| p.severs(now, from, to)) {
            self.stats.dropped_partition += 1;
            return SendFate::Drop(DropReason::Partition);
        }
        if let Some(rule) = self
            .plan
            .drops
            .iter()
            .find(|r| r.from.matches(from) && r.to.matches(to))
        {
            if rule.p > 0.0 && self.rng.gen_bool(rule.p) {
                self.stats.dropped_random += 1;
                return SendFate::Drop(DropReason::Random);
            }
        }
        let mut extra_us = 0i64;
        for spike in &self.plan.jitters {
            if spike.active(now) && spike.from.matches(from) && spike.to.matches(to) {
                extra_us += spike.extra_us;
                if spike.jitter_us > 0 {
                    extra_us += self.rng.gen_range(0..=spike.jitter_us);
                }
            }
        }
        if extra_us > 0 {
            self.stats.delayed += 1;
        }
        SendFate::Deliver { extra_us }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str, svc: &str, dc: &str) -> NodeMeta {
        NodeMeta::new(name, svc, dc)
    }

    #[test]
    fn selectors_match_metadata() {
        let m = meta("bid-3", "BidServers", "DC2");
        assert!(NodeSel::Any.matches(&m));
        assert!(NodeSel::Host("bid-3".into()).matches(&m));
        assert!(!NodeSel::Host("bid-4".into()).matches(&m));
        assert!(NodeSel::Service("BidServers".into()).matches(&m));
        assert!(NodeSel::Dc("DC2".into()).matches(&m));
        assert!(!NodeSel::Dc("DC1".into()).matches(&m));
    }

    #[test]
    fn partition_is_windowed_and_bidirectional() {
        let plan = FaultPlan::new(1).partition(
            NodeSel::Dc("DC1".into()),
            NodeSel::Dc("DC2".into()),
            SimTime::from_ms(100),
            SimTime::from_ms(200),
        );
        let mut st = FaultState::new(plan);
        let a = meta("a", "S", "DC1");
        let b = meta("b", "S", "DC2");
        // outside the window: delivered
        assert_eq!(
            st.judge_send(SimTime::from_ms(50), &a, &b),
            SendFate::Deliver { extra_us: 0 }
        );
        // inside: severed, both directions
        assert_eq!(
            st.judge_send(SimTime::from_ms(150), &a, &b),
            SendFate::Drop(DropReason::Partition)
        );
        assert_eq!(
            st.judge_send(SimTime::from_ms(150), &b, &a),
            SendFate::Drop(DropReason::Partition)
        );
        // end is exclusive
        assert_eq!(
            st.judge_send(SimTime::from_ms(200), &a, &b),
            SendFate::Deliver { extra_us: 0 }
        );
        assert_eq!(st.stats.dropped_partition, 2);
    }

    #[test]
    fn drop_rule_rate_is_roughly_honoured() {
        let plan = FaultPlan::new(42).drop(NodeSel::Any, NodeSel::Host("central".into()), 0.3);
        let mut st = FaultState::new(plan);
        let from = meta("agent-1", "Agents", "DC1");
        let to = meta("central", "Central", "DC1");
        let other = meta("other", "Other", "DC1");
        let mut dropped = 0;
        for _ in 0..10_000 {
            if matches!(
                st.judge_send(SimTime::ZERO, &from, &to),
                SendFate::Drop(DropReason::Random)
            ) {
                dropped += 1;
            }
            // non-matching link never consults the rule
            assert_eq!(
                st.judge_send(SimTime::ZERO, &from, &other),
                SendFate::Deliver { extra_us: 0 }
            );
        }
        assert!((2_700..3_300).contains(&dropped), "dropped={dropped}");
        assert_eq!(st.stats.dropped_random, dropped);
    }

    #[test]
    fn zero_probability_rule_never_draws() {
        // Two states with the same seed, one carrying a p=0 rule: their
        // RNG streams must stay in lockstep (the inert rule draws nothing),
        // which is the foundation of the zero-fault byte-identity claim.
        let with_rule = FaultPlan::new(7)
            .drop(NodeSel::Any, NodeSel::Any, 0.0)
            .jitter(
                NodeSel::Any,
                NodeSel::Any,
                SimTime::ZERO,
                SimTime::from_secs(1),
                0,
                1_000,
            );
        let bare = FaultPlan::new(7).jitter(
            NodeSel::Any,
            NodeSel::Any,
            SimTime::ZERO,
            SimTime::from_secs(1),
            0,
            1_000,
        );
        assert!(!with_rule.is_inert());
        let (mut a, mut b) = (FaultState::new(with_rule), FaultState::new(bare));
        let m1 = meta("x", "S", "DC1");
        let m2 = meta("y", "S", "DC1");
        for _ in 0..100 {
            assert_eq!(
                a.judge_send(SimTime::from_ms(1), &m1, &m2),
                b.judge_send(SimTime::from_ms(1), &m1, &m2)
            );
        }
    }

    #[test]
    fn jitter_spike_adds_bounded_latency() {
        let plan = FaultPlan::new(3).jitter(
            NodeSel::Host("a".into()),
            NodeSel::Host("b".into()),
            SimTime::from_ms(10),
            SimTime::from_ms(20),
            5_000,
            2_000,
        );
        let mut st = FaultState::new(plan);
        let a = meta("a", "S", "DC1");
        let b = meta("b", "S", "DC1");
        for _ in 0..100 {
            match st.judge_send(SimTime::from_ms(15), &a, &b) {
                SendFate::Deliver { extra_us } => {
                    assert!((5_000..=7_000).contains(&extra_us), "extra={extra_us}")
                }
                fate => panic!("unexpected {fate:?}"),
            }
        }
        assert_eq!(st.stats.delayed, 100);
        // outside window or wrong direction: no extra latency
        assert_eq!(
            st.judge_send(SimTime::from_ms(25), &a, &b),
            SendFate::Deliver { extra_us: 0 }
        );
        assert_eq!(
            st.judge_send(SimTime::from_ms(15), &b, &a),
            SendFate::Deliver { extra_us: 0 }
        );
    }

    #[test]
    fn crash_windows() {
        let plan = FaultPlan::new(0)
            .crash("h1", SimTime::from_ms(100), Some(SimTime::from_ms(300)))
            .crash("h2", SimTime::from_ms(50), None);
        assert!(!plan.host_down("h1", SimTime::from_ms(99)));
        assert!(plan.host_down("h1", SimTime::from_ms(100)));
        assert!(plan.host_down("h1", SimTime::from_ms(299)));
        assert!(!plan.host_down("h1", SimTime::from_ms(300)));
        assert!(plan.host_down("h2", SimTime::from_secs(3600)));
        assert!(!plan.host_down("h3", SimTime::from_ms(100)));
    }

    #[test]
    fn inert_plan_detection() {
        assert!(FaultPlan::new(9).is_inert());
        assert!(FaultPlan::new(9)
            .drop(NodeSel::Any, NodeSel::Any, 0.0)
            .is_inert());
        assert!(!FaultPlan::new(9)
            .drop(NodeSel::Any, NodeSel::Any, 0.01)
            .is_inert());
        assert!(!FaultPlan::new(9).crash("h", SimTime::ZERO, None).is_inert());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(11)
            .drop(NodeSel::Service("Agents".into()), NodeSel::Any, 0.05)
            .partition(
                NodeSel::Dc("DC1".into()),
                NodeSel::Dc("DC2".into()),
                SimTime::from_ms(10),
                SimTime::from_ms(20),
            )
            .jitter(
                NodeSel::Any,
                NodeSel::Any,
                SimTime::ZERO,
                SimTime::from_secs(1),
                100,
                50,
            )
            .crash("bid-1", SimTime::from_ms(5), Some(SimTime::from_ms(15)));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
