//! Network topology: data centers, link latencies, bandwidth, and per-link
//! byte accounting.
//!
//! Scrub deployments span "thousands of machines in many data centers
//! across the globe" (§4); what matters for the experiments is (a) how much
//! data leaves the application hosts and (b) how long it takes to reach
//! ScrubCentral — so the model is per-DC-pair latency plus a serialization
//! delay from message size and link bandwidth, with byte counters per link.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Topology and link parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// One-way latency between processes on the same host.
    pub loopback_us: i64,
    /// One-way latency between hosts in the same data center.
    pub intra_dc_us: i64,
    /// Default one-way latency between different data centers.
    pub inter_dc_us: i64,
    /// Overrides for specific (from, to) DC pairs.
    pub pair_us: HashMap<(String, String), i64>,
    /// Bandwidth per host NIC, bytes per microsecond (e.g. 1.25 = 10 Gb/s).
    pub bandwidth_bytes_per_us: f64,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            loopback_us: 10,
            intra_dc_us: 250,
            inter_dc_us: 60_000, // cross-continental: 60 ms one-way
            pair_us: HashMap::new(),
            bandwidth_bytes_per_us: 1.25, // 10 Gb/s
        }
    }
}

impl Topology {
    /// Set an explicit latency for a DC pair (both directions).
    pub fn set_pair_latency(&mut self, a: &str, b: &str, us: i64) {
        self.pair_us.insert((a.to_string(), b.to_string()), us);
        self.pair_us.insert((b.to_string(), a.to_string()), us);
    }

    /// One-way delivery delay for a message of `bytes` from `from_dc` to
    /// `to_dc` (`same_host` short-circuits to loopback).
    pub fn delay(&self, from_dc: &str, to_dc: &str, same_host: bool, bytes: usize) -> SimDuration {
        let base = if same_host {
            self.loopback_us
        } else if from_dc == to_dc {
            self.intra_dc_us
        } else {
            *self
                .pair_us
                .get(&(from_dc.to_string(), to_dc.to_string()))
                .unwrap_or(&self.inter_dc_us)
        };
        let transmit = (bytes as f64 / self.bandwidth_bytes_per_us).ceil() as i64;
        SimDuration(base + transmit)
    }
}

/// Traffic counters for one (from-DC, to-DC) link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
}

/// Accumulates traffic per DC pair over a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficAccounting {
    links: HashMap<(String, String), LinkStats>,
}

impl TrafficAccounting {
    /// Record one message on the (from, to) link.
    pub fn record(&mut self, from_dc: &str, to_dc: &str, bytes: usize) {
        let e = self
            .links
            .entry((from_dc.to_string(), to_dc.to_string()))
            .or_default();
        e.messages += 1;
        e.bytes += bytes as u64;
    }

    /// Stats for one directed link.
    pub fn link(&self, from_dc: &str, to_dc: &str) -> LinkStats {
        self.links
            .get(&(from_dc.to_string(), to_dc.to_string()))
            .copied()
            .unwrap_or_default()
    }

    /// Total bytes crossing DC boundaries (from != to).
    pub fn cross_dc_bytes(&self) -> u64 {
        self.links
            .iter()
            .filter(|((f, t), _)| f != t)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Total bytes over all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.values().map(|s| s.bytes).sum()
    }

    /// Total messages over all links.
    pub fn total_messages(&self) -> u64 {
        self.links.values().map(|s| s.messages).sum()
    }

    /// Iterate over all (from, to) -> stats entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &LinkStats)> {
        self.links.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_tiers() {
        let t = Topology::default();
        let lo = t.delay("DC1", "DC1", true, 0);
        let intra = t.delay("DC1", "DC1", false, 0);
        let inter = t.delay("DC1", "DC2", false, 0);
        assert!(lo < intra && intra < inter);
    }

    #[test]
    fn size_adds_transmit_delay() {
        let t = Topology::default();
        let small = t.delay("DC1", "DC2", false, 100);
        let big = t.delay("DC1", "DC2", false, 1_250_000); // 1.25 MB at 10Gb/s = 1ms
        assert_eq!(big.as_us() - small.as_us(), 1_000_000 - 80);
    }

    #[test]
    fn pair_override() {
        let mut t = Topology::default();
        t.set_pair_latency("DC1", "DC3", 5_000);
        assert_eq!(t.delay("DC1", "DC3", false, 0).as_us(), 5_000);
        assert_eq!(t.delay("DC3", "DC1", false, 0).as_us(), 5_000);
        assert_eq!(t.delay("DC1", "DC2", false, 0).as_us(), 60_000);
    }

    #[test]
    fn traffic_accounting() {
        let mut acc = TrafficAccounting::default();
        acc.record("DC1", "DC1", 100);
        acc.record("DC1", "DC2", 200);
        acc.record("DC1", "DC2", 300);
        assert_eq!(acc.link("DC1", "DC2").messages, 2);
        assert_eq!(acc.link("DC1", "DC2").bytes, 500);
        assert_eq!(acc.cross_dc_bytes(), 500);
        assert_eq!(acc.total_bytes(), 600);
        assert_eq!(acc.total_messages(), 3);
        assert_eq!(acc.link("DC9", "DC1"), LinkStats::default());
    }
}
