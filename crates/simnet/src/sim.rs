//! The deterministic discrete-event simulator.
//!
//! Nodes exchange messages over the [`Topology`];
//! the scheduler delivers them in virtual-time order with a strict (time,
//! sequence) total order, so a given seed always produces the identical
//! execution — every experiment figure is exactly reproducible.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::time::{SimDuration, SimTime};
use crate::topology::{Topology, TrafficAccounting};

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Static metadata of a node: its host name, the service it runs, and its
/// data center — the attributes the `@[...]` target clause filters on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta {
    /// Unique host name.
    pub name: String,
    /// Service label (e.g. `"BidServers"`).
    pub service: String,
    /// Data center label (e.g. `"DC1"`).
    pub dc: String,
}

impl NodeMeta {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, service: impl Into<String>, dc: impl Into<String>) -> Self {
        NodeMeta {
            name: name.into(),
            service: service.into(),
            dc: dc.into(),
        }
    }
}

/// Messages must report an approximate wire size for latency/bandwidth
/// modelling and byte accounting.
pub trait Message: 'static {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

/// Behaviour of a simulated node.
pub trait Node<M: Message>: Any {
    /// Called once at simulation start (time 0, or when the node is added
    /// to an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: u64) {}

    /// Downcast support (inspect node state after a run).
    fn as_any(&self) -> &dyn Any;

    /// Downcast support (mutate node state between runs).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the [`Node`] downcast boilerplate for a concrete node type.
#[macro_export]
macro_rules! impl_node_any {
    () => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}

enum Action<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimDuration, id: u64 },
}

/// Handed to node callbacks: the clock, the node's identity, a seeded RNG,
/// node metadata, and the means to send messages and set timers.
pub struct Context<'a, M: Message> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node being invoked.
    pub self_id: NodeId,
    /// Deterministic RNG (shared by all nodes; execution order is total).
    pub rng: &'a mut StdRng,
    meta: &'a [NodeMeta],
    out: &'a mut Vec<Action<M>>,
}

impl<M: Message> Context<'_, M> {
    /// Send `msg` to `to`; it arrives after the topology-determined delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push(Action::Send { to, msg });
    }

    /// Arrange for [`Node::on_timer`] to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, id: u64) {
        self.out.push(Action::Timer { delay, id });
    }

    /// Metadata of any node.
    pub fn meta(&self, id: NodeId) -> &NodeMeta {
        &self.meta[id.0 as usize]
    }

    /// Metadata of the node being invoked.
    pub fn self_meta(&self) -> &NodeMeta {
        self.meta(self.self_id)
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.meta.len()
    }
}

enum Payload<M> {
    Start,
    Deliver { from: NodeId, msg: M },
    Timer { id: u64 },
}

struct Queued<M> {
    at: SimTime,
    seq: u64,
    node: NodeId,
    payload: Payload<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulator: nodes + topology + event queue + traffic accounting.
pub struct Sim<M: Message> {
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    meta: Vec<NodeMeta>,
    topology: Topology,
    queue: BinaryHeap<Queued<M>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    traffic: TrafficAccounting,
    events_processed: u64,
}

impl<M: Message> Sim<M> {
    /// Create a simulator with the given topology and RNG seed.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Sim {
            nodes: Vec::new(),
            meta: Vec::new(),
            topology,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            traffic: TrafficAccounting::default(),
            events_processed: 0,
        }
    }

    /// Add a node; its `on_start` is scheduled at the current time.
    pub fn add_node(&mut self, meta: NodeMeta, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.meta.push(meta);
        self.push(self.now, id, Payload::Start);
        id
    }

    /// Metadata of all nodes, indexed by `NodeId`.
    pub fn metas(&self) -> &[NodeMeta] {
        &self.meta
    }

    /// Look up a node id by host name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic accounting so far.
    pub fn traffic(&self) -> &TrafficAccounting {
        &self.traffic
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Inject a message from "outside" (delivered to `to` after the
    /// loopback delay). Useful for tests and external drivers.
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: M) {
        let at = self.now + SimDuration(self.topology.loopback_us);
        self.push(at, to, Payload::Deliver { from, msg });
    }

    /// Borrow a node's concrete state (after/between runs).
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0 as usize]
            .as_ref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutably borrow a node's concrete state (after/between runs).
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0 as usize]
            .as_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    fn push(&mut self, at: SimTime, node: NodeId, payload: Payload<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            node,
            payload,
        });
    }

    /// Process the next queued event, if any. Returns false when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;

        let idx = ev.node.0 as usize;
        let Some(mut node) = self.nodes[idx].take() else {
            return true; // node removed; drop the event
        };
        let mut out: Vec<Action<M>> = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                self_id: ev.node,
                rng: &mut self.rng,
                meta: &self.meta,
                out: &mut out,
            };
            match ev.payload {
                Payload::Start => node.on_start(&mut ctx),
                Payload::Deliver { from, msg } => node.on_message(&mut ctx, from, msg),
                Payload::Timer { id } => node.on_timer(&mut ctx, id),
            }
        }
        self.nodes[idx] = Some(node);

        for action in out {
            match action {
                Action::Send { to, msg } => {
                    let from_meta = &self.meta[idx];
                    let to_meta = &self.meta[to.0 as usize];
                    let bytes = msg.size_bytes();
                    let delay = self.topology.delay(
                        &from_meta.dc,
                        &to_meta.dc,
                        from_meta.name == to_meta.name,
                        bytes,
                    );
                    self.traffic.record(&from_meta.dc, &to_meta.dc, bytes);
                    let at = self.now + delay;
                    self.push(at, to, Payload::Deliver { from: ev.node, msg });
                }
                Action::Timer { delay, id } => {
                    let at = self.now + delay;
                    self.push(at, ev.node, Payload::Timer { id });
                }
            }
        }
        true
    }

    /// Run until the queue is exhausted or virtual time would pass
    /// `deadline`; the clock ends at `deadline` (or the last event time).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run to quiescence (with a safety cap on event count).
    pub fn run_all(&mut self, max_events: u64) {
        let mut n = 0u64;
        while n < max_events && self.step() {
            n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Ping {
        payload: Vec<u8>,
    }
    impl Message for Ping {
        fn size_bytes(&self) -> usize {
            self.payload.len()
        }
    }

    /// Replies to every ping; counts what it saw.
    struct Echo {
        received: u32,
    }
    impl Node<Ping> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.received += 1;
            if ctx.self_id != from {
                // avoid infinite ping-pong: only reply once per inbound
                if self.received <= 1 {
                    ctx.send(from, msg);
                }
            }
        }
        impl_node_any!();
    }

    /// Sends one ping at start, records RTT.
    struct Pinger {
        target: Option<NodeId>,
        sent_at: SimTime,
        rtt_us: Option<i64>,
    }
    impl Node<Ping> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if let Some(t) = self.target {
                self.sent_at = ctx.now;
                ctx.send(
                    t,
                    Ping {
                        payload: vec![0; 100],
                    },
                );
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {
            self.rtt_us = Some((ctx.now - self.sent_at).as_us());
        }
        impl_node_any!();
    }

    fn two_node_sim(dc_a: &str, dc_b: &str) -> (Sim<Ping>, NodeId, NodeId) {
        let mut sim = Sim::new(Topology::default(), 1);
        let echo = sim.add_node(
            NodeMeta::new("echo", "Echo", dc_b),
            Box::new(Echo { received: 0 }),
        );
        let pinger = sim.add_node(
            NodeMeta::new("pinger", "Pinger", dc_a),
            Box::new(Pinger {
                target: Some(echo),
                sent_at: SimTime::ZERO,
                rtt_us: None,
            }),
        );
        (sim, echo, pinger)
    }

    #[test]
    fn rtt_reflects_topology() {
        let (mut sim, _, pinger) = two_node_sim("DC1", "DC1");
        sim.run_all(1000);
        let intra_rtt = sim.node_as::<Pinger>(pinger).unwrap().rtt_us.unwrap();

        let (mut sim, _, pinger) = two_node_sim("DC1", "DC2");
        sim.run_all(1000);
        let inter_rtt = sim.node_as::<Pinger>(pinger).unwrap().rtt_us.unwrap();

        assert!(intra_rtt >= 2 * 250);
        assert!(inter_rtt >= 2 * 60_000);
        assert!(inter_rtt > intra_rtt * 10);
    }

    #[test]
    fn traffic_is_accounted() {
        let (mut sim, _, _) = two_node_sim("DC1", "DC2");
        sim.run_all(1000);
        // ping + echo reply = 2 messages of 100 bytes
        assert_eq!(sim.traffic().total_messages(), 2);
        assert_eq!(sim.traffic().total_bytes(), 200);
        assert_eq!(sim.traffic().cross_dc_bytes(), 200);
        assert_eq!(sim.traffic().link("DC1", "DC2").messages, 1);
    }

    #[test]
    fn determinism_same_seed_same_execution() {
        let run = |seed| {
            let (mut sim, echo, _) = two_node_sim("DC1", "DC2");
            let _ = seed; // topology identical; determinism from ordering
            sim.run_all(1000);
            (
                sim.now().as_us(),
                sim.node_as::<Echo>(echo).unwrap().received,
                sim.events_processed(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    struct TickTock {
        ticks: u32,
    }
    impl Node<Ping> for TickTock {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(SimDuration::from_ms(10), 7);
        }
        fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, id: u64) {
            assert_eq!(id, 7);
            self.ticks += 1;
            if self.ticks < 5 {
                ctx.set_timer(SimDuration::from_ms(10), 7);
            }
        }
        impl_node_any!();
    }

    #[test]
    fn timers_fire_at_intervals() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let id = sim.add_node(
            NodeMeta::new("t", "Ticker", "DC1"),
            Box::new(TickTock { ticks: 0 }),
        );
        sim.run_all(1000);
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 5);
        assert_eq!(sim.now().as_ms(), 50);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        sim.add_node(
            NodeMeta::new("t", "Ticker", "DC1"),
            Box::new(TickTock { ticks: 0 }),
        );
        sim.run_until(SimTime::from_ms(25));
        assert_eq!(sim.now(), SimTime::from_ms(25));
        let id = sim.node_by_name("t").unwrap();
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 2);
        sim.run_until(SimTime::from_ms(100));
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 5);
    }

    #[test]
    fn inject_external_message() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let echo = sim.add_node(
            NodeMeta::new("echo", "Echo", "DC1"),
            Box::new(Echo { received: 0 }),
        );
        sim.inject(echo, echo, Ping { payload: vec![1] });
        sim.run_all(100);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 1);
    }

    #[test]
    fn node_lookup_by_name() {
        let (sim, echo, _) = two_node_sim("DC1", "DC1");
        assert_eq!(sim.node_by_name("echo"), Some(echo));
        assert_eq!(sim.node_by_name("missing"), None);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Tagged {
        seq: u64,
        payload_len: usize,
    }
    impl Message for Tagged {
        fn size_bytes(&self) -> usize {
            self.payload_len
        }
    }

    /// Records delivery times of everything it receives.
    #[derive(Default)]
    struct Recorder {
        deliveries: Vec<(u64, i64)>, // (sender seq, arrival us)
    }
    impl Node<Tagged> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Tagged>, _from: NodeId, msg: Tagged) {
            self.deliveries.push((msg.seq, ctx.now.as_us()));
        }
        impl_node_any!();
    }

    /// Emits a fixed schedule of messages toward a target.
    struct Emitter {
        target: NodeId,
        schedule: Vec<(i64, usize)>, // (send at ms, payload bytes)
        next: usize,
    }
    impl Node<Tagged> for Emitter {
        fn on_start(&mut self, ctx: &mut Context<'_, Tagged>) {
            if !self.schedule.is_empty() {
                ctx.set_timer(SimDuration::from_ms(self.schedule[0].0.max(1)), 1);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, Tagged>, _: NodeId, _: Tagged) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Tagged>, _timer: u64) {
            let (_, bytes) = self.schedule[self.next];
            ctx.send(
                self.target,
                Tagged {
                    seq: self.next as u64,
                    payload_len: bytes,
                },
            );
            self.next += 1;
            if self.next < self.schedule.len() {
                let delay = self.schedule[self.next].0 - self.schedule[self.next - 1].0;
                ctx.set_timer(SimDuration::from_ms(delay.max(1)), 1);
            }
        }
        impl_node_any!();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Simulator invariants for any message schedule:
        /// (1) virtual time at each delivery never precedes the send time
        ///     plus the topology's base latency;
        /// (2) equal-size messages between the same pair deliver FIFO;
        /// (3) the run is deterministic (same schedule, same deliveries).
        #[test]
        fn delivery_invariants(
            mut gaps in prop::collection::vec((1i64..50, 0usize..4000), 1..40),
            cross_dc in any::<bool>(),
        ) {
            // build an absolute schedule from the gaps
            let mut t = 0;
            for (at, _) in gaps.iter_mut() {
                t += *at;
                *at = t;
            }
            let run = |schedule: Vec<(i64, usize)>| {
                let mut sim: Sim<Tagged> = Sim::new(Topology::default(), 3);
                let rx_dc = if cross_dc { "DC2" } else { "DC1" };
                let rx = sim.add_node(
                    NodeMeta::new("rx", "Receivers", rx_dc),
                    Box::new(Recorder::default()),
                );
                sim.add_node(
                    NodeMeta::new("tx", "Senders", "DC1"),
                    Box::new(Emitter {
                        target: rx,
                        schedule,
                        next: 0,
                    }),
                );
                sim.run_all(1_000_000);
                sim.node_as::<Recorder>(rx).unwrap().deliveries.clone()
            };
            let a = run(gaps.clone());
            let b = run(gaps.clone());
            prop_assert_eq!(&a, &b, "nondeterministic delivery");
            prop_assert_eq!(a.len(), gaps.len());

            let base_us = if cross_dc { 60_000 } else { 250 };
            for (seq, arrive_us) in &a {
                let sent_ms = gaps[*seq as usize].0;
                prop_assert!(
                    *arrive_us >= sent_ms * 1_000 + base_us,
                    "arrival before send + latency"
                );
            }
            // FIFO among equal-size messages
            let mut last_by_size: std::collections::HashMap<usize, (u64, i64)> =
                std::collections::HashMap::new();
            let mut by_arrival = a.clone();
            by_arrival.sort_by_key(|(_, t)| *t);
            for (seq, t) in by_arrival {
                let size = gaps[seq as usize].1;
                if let Some((prev_seq, _)) = last_by_size.get(&size) {
                    prop_assert!(
                        *prev_seq < seq,
                        "same-size messages reordered: {prev_seq} after {seq}"
                    );
                }
                last_by_size.insert(size, (seq, t));
            }
        }
    }
}
