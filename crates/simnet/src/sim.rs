//! The deterministic discrete-event simulator.
//!
//! Nodes exchange messages over the [`Topology`];
//! the scheduler delivers them in virtual-time order with a strict (time,
//! sequence) total order, so a given seed always produces the identical
//! execution — every experiment figure is exactly reproducible.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::{FaultPlan, FaultState, FaultStats, NodeSel, SendFate};
use crate::time::{SimDuration, SimTime};
use crate::topology::{Topology, TrafficAccounting};

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Static metadata of a node: its host name, the service it runs, and its
/// data center — the attributes the `@[...]` target clause filters on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta {
    /// Unique host name.
    pub name: String,
    /// Service label (e.g. `"BidServers"`).
    pub service: String,
    /// Data center label (e.g. `"DC1"`).
    pub dc: String,
}

impl NodeMeta {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, service: impl Into<String>, dc: impl Into<String>) -> Self {
        NodeMeta {
            name: name.into(),
            service: service.into(),
            dc: dc.into(),
        }
    }
}

/// Messages must report an approximate wire size for latency/bandwidth
/// modelling and byte accounting.
pub trait Message: 'static {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

/// Behaviour of a simulated node.
pub trait Node<M: Message>: Any {
    /// Called once at simulation start (time 0, or when the node is added
    /// to an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: u64) {}

    /// Downcast support (inspect node state after a run).
    fn as_any(&self) -> &dyn Any;

    /// Downcast support (mutate node state between runs).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements the [`Node`] downcast boilerplate for a concrete node type.
#[macro_export]
macro_rules! impl_node_any {
    () => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}

enum Action<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: SimDuration, id: u64 },
}

/// Handed to node callbacks: the clock, the node's identity, a seeded RNG,
/// node metadata, and the means to send messages and set timers.
pub struct Context<'a, M: Message> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node being invoked.
    pub self_id: NodeId,
    /// Deterministic RNG (shared by all nodes; execution order is total).
    pub rng: &'a mut StdRng,
    meta: &'a [NodeMeta],
    out: &'a mut Vec<Action<M>>,
}

impl<M: Message> Context<'_, M> {
    /// Send `msg` to `to`; it arrives after the topology-determined delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push(Action::Send { to, msg });
    }

    /// Arrange for [`Node::on_timer`] to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, id: u64) {
        self.out.push(Action::Timer { delay, id });
    }

    /// Metadata of any node.
    pub fn meta(&self, id: NodeId) -> &NodeMeta {
        &self.meta[id.0 as usize]
    }

    /// Metadata of the node being invoked.
    pub fn self_meta(&self) -> &NodeMeta {
        self.meta(self.self_id)
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.meta.len()
    }
}

enum Payload<M> {
    Start,
    Deliver {
        from: NodeId,
        msg: M,
    },
    /// `inc` is the node incarnation that armed the timer; a restart bumps
    /// the incarnation, so timers from the previous life are discarded.
    Timer {
        id: u64,
        inc: u32,
    },
    /// Scheduled at a crash window's `up_at`: bumps the incarnation and
    /// re-runs `on_start`.
    Restart,
}

struct Queued<M> {
    at: SimTime,
    seq: u64,
    node: NodeId,
    payload: Payload<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulator: nodes + topology + event queue + traffic accounting.
pub struct Sim<M: Message> {
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    meta: Vec<NodeMeta>,
    topology: Topology,
    queue: BinaryHeap<Queued<M>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    traffic: TrafficAccounting,
    events_processed: u64,
    /// Per-node restart count; timers are stamped with the incarnation
    /// that armed them.
    incarnation: Vec<u32>,
    faults: Option<FaultState>,
}

impl<M: Message> Sim<M> {
    /// Create a simulator with the given topology and RNG seed.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Sim {
            nodes: Vec::new(),
            meta: Vec::new(),
            topology,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            traffic: TrafficAccounting::default(),
            events_processed: 0,
            incarnation: Vec::new(),
            faults: None,
        }
    }

    /// Add a node; its `on_start` is scheduled at the current time.
    pub fn add_node(&mut self, meta: NodeMeta, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.meta.push(meta);
        self.incarnation.push(0);
        self.push(self.now, id, Payload::Start);
        id
    }

    /// Install a fault plan. Restarts for every crash window with an
    /// `up_at` are scheduled immediately (deterministically, through the
    /// same event queue as everything else). Crash windows naming unknown
    /// hosts are ignored. Installing an inert plan leaves the execution
    /// byte-identical to running without one.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for crash in &plan.crashes {
            if let (Some(node), Some(up)) = (self.node_by_name(&crash.host), crash.up_at) {
                let at = if up < self.now { self.now } else { up };
                self.push(at, node, Payload::Restart);
            }
        }
        self.faults = Some(FaultState::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Fault-plane counters for the run so far (zeros when no plan is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Current incarnation (restart count) of a node.
    pub fn incarnation_of(&self, id: NodeId) -> u32 {
        self.incarnation[id.0 as usize]
    }

    fn ensure_faults(&mut self) -> &mut FaultState {
        if self.faults.is_none() {
            self.faults = Some(FaultState::new(FaultPlan::new(0)));
        }
        self.faults.as_mut().unwrap()
    }

    /// Live mutation: lose messages from `from` to `to` with probability
    /// `p` from now on (prepended, so it wins over earlier rules).
    pub fn set_link_drop(&mut self, from: NodeSel, to: NodeSel, p: f64) {
        let f = self.ensure_faults();
        f.plan
            .drops
            .insert(0, crate::fault::DropRule { from, to, p });
    }

    /// Live mutation: sever `a`↔`b` during `[from, until)`.
    pub fn add_partition(&mut self, a: NodeSel, b: NodeSel, from: SimTime, until: SimTime) {
        let f = self.ensure_faults();
        f.plan
            .partitions
            .push(crate::fault::Partition { a, b, from, until });
    }

    /// Live mutation: crash `host` at `down_from`, restarting at `up_at`
    /// if given. Returns false when the host name is unknown.
    pub fn inject_crash(&mut self, host: &str, down_from: SimTime, up_at: Option<SimTime>) -> bool {
        let Some(node) = self.node_by_name(host) else {
            return false;
        };
        if let Some(up) = up_at {
            let at = if up < self.now { self.now } else { up };
            self.push(at, node, Payload::Restart);
        }
        let f = self.ensure_faults();
        f.plan.crashes.push(crate::fault::CrashWindow {
            host: host.to_string(),
            down_from,
            up_at,
        });
        true
    }

    /// Live mutation: bring a crashed `host` back up now. Every crash
    /// window currently holding it down is closed at the present time and
    /// one restart is scheduled. Returns false when the host is unknown
    /// or not down.
    pub fn revive(&mut self, host: &str) -> bool {
        let Some(node) = self.node_by_name(host) else {
            return false;
        };
        let now = self.now;
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        let mut any = false;
        for c in f.plan.crashes.iter_mut() {
            if c.host == host && c.down(now) {
                c.up_at = Some(now);
                any = true;
            }
        }
        if any {
            self.push(now, node, Payload::Restart);
        }
        any
    }

    /// Metadata of all nodes, indexed by `NodeId`.
    pub fn metas(&self) -> &[NodeMeta] {
        &self.meta
    }

    /// Look up a node id by host name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic accounting so far.
    pub fn traffic(&self) -> &TrafficAccounting {
        &self.traffic
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Inject a message from "outside" (delivered to `to` after the
    /// loopback delay). Useful for tests and external drivers.
    pub fn inject(&mut self, to: NodeId, from: NodeId, msg: M) {
        let at = self.now + SimDuration(self.topology.loopback_us);
        self.push(at, to, Payload::Deliver { from, msg });
    }

    /// Borrow a node's concrete state (after/between runs).
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0 as usize]
            .as_ref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutably borrow a node's concrete state (after/between runs).
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0 as usize]
            .as_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    fn push(&mut self, at: SimTime, node: NodeId, payload: Payload<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued {
            at,
            seq,
            node,
            payload,
        });
    }

    /// Process the next queued event, if any. Returns false when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;

        let idx = ev.node.0 as usize;

        // Fault plane: gate the event before the node sees it.
        let mut payload = ev.payload;
        if let Payload::Timer { inc, .. } = &payload {
            // Armed by a previous incarnation of a since-restarted node.
            if *inc != self.incarnation[idx] {
                if let Some(faults) = self.faults.as_mut() {
                    faults.stats.stale_timers += 1;
                }
                return true;
            }
        }
        if let Payload::Restart = payload {
            // The transition back up: bump the incarnation so pre-crash
            // timers die, then run on_start again.
            self.incarnation[idx] += 1;
            if let Some(faults) = self.faults.as_mut() {
                faults.stats.restarts += 1;
            }
            payload = Payload::Start;
        } else if let Some(faults) = self.faults.as_mut() {
            if faults.plan.host_down(&self.meta[idx].name, self.now) {
                // Host is down: it processes nothing. In-flight messages
                // addressed to it are lost; its timers and pending start
                // are swallowed too.
                if matches!(payload, Payload::Deliver { .. }) {
                    faults.stats.dropped_host_down += 1;
                }
                return true;
            }
        }

        let Some(mut node) = self.nodes[idx].take() else {
            return true; // node removed; drop the event
        };
        let mut out: Vec<Action<M>> = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                self_id: ev.node,
                rng: &mut self.rng,
                meta: &self.meta,
                out: &mut out,
            };
            match payload {
                Payload::Start | Payload::Restart => node.on_start(&mut ctx),
                Payload::Deliver { from, msg } => node.on_message(&mut ctx, from, msg),
                Payload::Timer { id, .. } => node.on_timer(&mut ctx, id),
            }
        }
        self.nodes[idx] = Some(node);

        for action in out {
            match action {
                Action::Send { to, msg } => {
                    let from_meta = &self.meta[idx];
                    let to_meta = &self.meta[to.0 as usize];
                    let bytes = msg.size_bytes();
                    // The message leaves the sender's NIC either way, so
                    // traffic accounting records it even when the fault
                    // plane then loses it en route.
                    self.traffic.record(&from_meta.dc, &to_meta.dc, bytes);
                    let mut extra_us = 0i64;
                    if let Some(faults) = self.faults.as_mut() {
                        match faults.judge_send(self.now, from_meta, to_meta) {
                            SendFate::Drop(_) => continue,
                            SendFate::Deliver { extra_us: e } => extra_us = e,
                        }
                    }
                    let delay = self.topology.delay(
                        &from_meta.dc,
                        &to_meta.dc,
                        from_meta.name == to_meta.name,
                        bytes,
                    );
                    let at = self.now + delay + SimDuration(extra_us);
                    self.push(at, to, Payload::Deliver { from: ev.node, msg });
                }
                Action::Timer { delay, id } => {
                    let at = self.now + delay;
                    let inc = self.incarnation[idx];
                    self.push(at, ev.node, Payload::Timer { id, inc });
                }
            }
        }
        true
    }

    /// Run until the queue is exhausted or virtual time would pass
    /// `deadline`; the clock ends at `deadline` (or the last event time).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run to quiescence (with a safety cap on event count).
    pub fn run_all(&mut self, max_events: u64) {
        let mut n = 0u64;
        while n < max_events && self.step() {
            n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Ping {
        payload: Vec<u8>,
    }
    impl Message for Ping {
        fn size_bytes(&self) -> usize {
            self.payload.len()
        }
    }

    /// Replies to every ping; counts what it saw.
    struct Echo {
        received: u32,
    }
    impl Node<Ping> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.received += 1;
            if ctx.self_id != from {
                // avoid infinite ping-pong: only reply once per inbound
                if self.received <= 1 {
                    ctx.send(from, msg);
                }
            }
        }
        impl_node_any!();
    }

    /// Sends one ping at start, records RTT.
    struct Pinger {
        target: Option<NodeId>,
        sent_at: SimTime,
        rtt_us: Option<i64>,
    }
    impl Node<Ping> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if let Some(t) = self.target {
                self.sent_at = ctx.now;
                ctx.send(
                    t,
                    Ping {
                        payload: vec![0; 100],
                    },
                );
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {
            self.rtt_us = Some((ctx.now - self.sent_at).as_us());
        }
        impl_node_any!();
    }

    fn two_node_sim(dc_a: &str, dc_b: &str) -> (Sim<Ping>, NodeId, NodeId) {
        let mut sim = Sim::new(Topology::default(), 1);
        let echo = sim.add_node(
            NodeMeta::new("echo", "Echo", dc_b),
            Box::new(Echo { received: 0 }),
        );
        let pinger = sim.add_node(
            NodeMeta::new("pinger", "Pinger", dc_a),
            Box::new(Pinger {
                target: Some(echo),
                sent_at: SimTime::ZERO,
                rtt_us: None,
            }),
        );
        (sim, echo, pinger)
    }

    #[test]
    fn rtt_reflects_topology() {
        let (mut sim, _, pinger) = two_node_sim("DC1", "DC1");
        sim.run_all(1000);
        let intra_rtt = sim.node_as::<Pinger>(pinger).unwrap().rtt_us.unwrap();

        let (mut sim, _, pinger) = two_node_sim("DC1", "DC2");
        sim.run_all(1000);
        let inter_rtt = sim.node_as::<Pinger>(pinger).unwrap().rtt_us.unwrap();

        assert!(intra_rtt >= 2 * 250);
        assert!(inter_rtt >= 2 * 60_000);
        assert!(inter_rtt > intra_rtt * 10);
    }

    #[test]
    fn traffic_is_accounted() {
        let (mut sim, _, _) = two_node_sim("DC1", "DC2");
        sim.run_all(1000);
        // ping + echo reply = 2 messages of 100 bytes
        assert_eq!(sim.traffic().total_messages(), 2);
        assert_eq!(sim.traffic().total_bytes(), 200);
        assert_eq!(sim.traffic().cross_dc_bytes(), 200);
        assert_eq!(sim.traffic().link("DC1", "DC2").messages, 1);
    }

    #[test]
    fn determinism_same_seed_same_execution() {
        let run = |seed| {
            let (mut sim, echo, _) = two_node_sim("DC1", "DC2");
            let _ = seed; // topology identical; determinism from ordering
            sim.run_all(1000);
            (
                sim.now().as_us(),
                sim.node_as::<Echo>(echo).unwrap().received,
                sim.events_processed(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    struct TickTock {
        ticks: u32,
    }
    impl Node<Ping> for TickTock {
        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            ctx.set_timer(SimDuration::from_ms(10), 7);
        }
        fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, id: u64) {
            assert_eq!(id, 7);
            self.ticks += 1;
            if self.ticks < 5 {
                ctx.set_timer(SimDuration::from_ms(10), 7);
            }
        }
        impl_node_any!();
    }

    #[test]
    fn timers_fire_at_intervals() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let id = sim.add_node(
            NodeMeta::new("t", "Ticker", "DC1"),
            Box::new(TickTock { ticks: 0 }),
        );
        sim.run_all(1000);
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 5);
        assert_eq!(sim.now().as_ms(), 50);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        sim.add_node(
            NodeMeta::new("t", "Ticker", "DC1"),
            Box::new(TickTock { ticks: 0 }),
        );
        sim.run_until(SimTime::from_ms(25));
        assert_eq!(sim.now(), SimTime::from_ms(25));
        let id = sim.node_by_name("t").unwrap();
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 2);
        sim.run_until(SimTime::from_ms(100));
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 5);
    }

    #[test]
    fn inject_external_message() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let echo = sim.add_node(
            NodeMeta::new("echo", "Echo", "DC1"),
            Box::new(Echo { received: 0 }),
        );
        sim.inject(echo, echo, Ping { payload: vec![1] });
        sim.run_all(100);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 1);
    }

    #[test]
    fn node_lookup_by_name() {
        let (sim, echo, _) = two_node_sim("DC1", "DC1");
        assert_eq!(sim.node_by_name("echo"), Some(echo));
        assert_eq!(sim.node_by_name("missing"), None);
    }

    use crate::fault::{FaultPlan, NodeSel};

    #[test]
    fn full_drop_rule_loses_the_ping() {
        let (mut sim, echo, pinger) = two_node_sim("DC1", "DC1");
        sim.set_fault_plan(FaultPlan::new(1).drop(
            NodeSel::Host("pinger".into()),
            NodeSel::Host("echo".into()),
            1.0,
        ));
        sim.run_all(1000);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 0);
        assert!(sim.node_as::<Pinger>(pinger).unwrap().rtt_us.is_none());
        assert_eq!(sim.fault_stats().dropped_random, 1);
        // the lost message still left the sender's NIC
        assert_eq!(sim.traffic().total_messages(), 1);
    }

    #[test]
    fn inert_plan_is_byte_identical_to_no_plan() {
        let run = |with_plan: bool| {
            let (mut sim, echo, pinger) = two_node_sim("DC1", "DC2");
            if with_plan {
                sim.set_fault_plan(FaultPlan::new(999).drop(NodeSel::Any, NodeSel::Any, 0.0));
            }
            sim.run_all(1000);
            (
                sim.now().as_us(),
                sim.events_processed(),
                sim.traffic().total_bytes(),
                sim.node_as::<Pinger>(pinger).unwrap().rtt_us,
                sim.node_as::<Echo>(echo).unwrap().received,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn crash_swallows_messages_and_restart_reruns_on_start() {
        // TickTock arms a timer chain from on_start; crash it mid-chain
        // and restart it. Pre-crash timers must die (stale incarnation),
        // and on_start must run again, re-arming the chain.
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let id = sim.add_node(
            NodeMeta::new("t", "Ticker", "DC1"),
            Box::new(TickTock { ticks: 0 }),
        );
        sim.set_fault_plan(FaultPlan::new(0).crash(
            "t",
            SimTime::from_ms(15),
            Some(SimTime::from_ms(18)),
        ));
        sim.run_all(1000);
        // One tick at 10ms (arming a timer for 20ms), down during
        // [15ms, 18ms). The restart at 18ms re-runs on_start, so the
        // 20ms timer pops with a stale incarnation and dies, and the new
        // chain ticks at 28/38/48/58ms until the counter (which survives
        // the restart — in-memory state is not wiped) reaches 5.
        assert_eq!(sim.node_as::<TickTock>(id).unwrap().ticks, 5);
        assert_eq!(sim.incarnation_of(id), 1);
        let stats = sim.fault_stats();
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.stale_timers, 1);
        assert_eq!(sim.now().as_ms(), 58);
    }

    #[test]
    fn messages_to_down_host_are_lost() {
        let (mut sim, echo, pinger) = two_node_sim("DC1", "DC1");
        // echo is down for the whole run; the ping arrives into the void
        sim.set_fault_plan(FaultPlan::new(0).crash("echo", SimTime::ZERO, None));
        sim.run_all(1000);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 0);
        assert!(sim.node_as::<Pinger>(pinger).unwrap().rtt_us.is_none());
        // the Start event and the ping were both swallowed; only the
        // delivery counts as a host-down drop
        assert_eq!(sim.fault_stats().dropped_host_down, 1);
    }

    #[test]
    fn jitter_spike_delays_delivery() {
        let base_rtt = {
            let (mut sim, _, pinger) = two_node_sim("DC1", "DC1");
            sim.run_all(1000);
            sim.node_as::<Pinger>(pinger).unwrap().rtt_us.unwrap()
        };
        let (mut sim, _, pinger) = two_node_sim("DC1", "DC1");
        sim.set_fault_plan(FaultPlan::new(5).jitter(
            NodeSel::Any,
            NodeSel::Any,
            SimTime::ZERO,
            SimTime::from_secs(10),
            10_000,
            0,
        ));
        sim.run_all(1000);
        let jittered_rtt = sim.node_as::<Pinger>(pinger).unwrap().rtt_us.unwrap();
        // both legs picked up the fixed 10ms spike
        assert_eq!(jittered_rtt - base_rtt, 20_000);
        assert_eq!(sim.fault_stats().delayed, 2);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let (mut sim, echo, pinger) = two_node_sim("DC1", "DC2");
            sim.set_fault_plan(
                FaultPlan::new(77)
                    .drop(NodeSel::Any, NodeSel::Any, 0.5)
                    .jitter(
                        NodeSel::Any,
                        NodeSel::Any,
                        SimTime::ZERO,
                        SimTime::from_secs(1),
                        100,
                        5_000,
                    ),
            );
            sim.run_all(1000);
            (
                sim.now().as_us(),
                sim.events_processed(),
                sim.node_as::<Echo>(echo).unwrap().received,
                sim.node_as::<Pinger>(pinger).unwrap().rtt_us,
                sim.fault_stats(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runtime_fault_mutation() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let echo = sim.add_node(
            NodeMeta::new("echo", "Echo", "DC1"),
            Box::new(Echo { received: 0 }),
        );
        sim.run_all(10);
        // live: sever the world, then inject a message — it must vanish
        sim.set_link_drop(NodeSel::Any, NodeSel::Host("echo".into()), 1.0);
        assert!(sim.inject_crash("echo", sim.now(), None));
        assert!(!sim.inject_crash("nope", sim.now(), None));
        sim.inject(echo, echo, Ping { payload: vec![1] });
        sim.run_all(100);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 0);
        assert!(sim.fault_plan().is_some());
    }

    #[test]
    fn revive_brings_a_killed_host_back() {
        let mut sim: Sim<Ping> = Sim::new(Topology::default(), 1);
        let echo = sim.add_node(
            NodeMeta::new("echo", "Echo", "DC1"),
            Box::new(Echo { received: 0 }),
        );
        sim.run_all(10);
        // kill with no scheduled restart: messages vanish
        assert!(sim.inject_crash("echo", sim.now(), None));
        sim.inject(echo, echo, Ping { payload: vec![1] });
        sim.run_all(100);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 0);
        // not-down / unknown hosts cannot be revived
        assert!(!sim.revive("nope"));
        // revive closes the open crash window and restarts the node
        assert!(sim.revive("echo"));
        assert!(!sim.revive("echo"), "already up");
        sim.inject(echo, echo, Ping { payload: vec![2] });
        sim.run_all(100);
        assert_eq!(sim.node_as::<Echo>(echo).unwrap().received, 1);
        assert_eq!(sim.fault_stats().restarts, 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Tagged {
        seq: u64,
        payload_len: usize,
    }
    impl Message for Tagged {
        fn size_bytes(&self) -> usize {
            self.payload_len
        }
    }

    /// Records delivery times of everything it receives.
    #[derive(Default)]
    struct Recorder {
        deliveries: Vec<(u64, i64)>, // (sender seq, arrival us)
    }
    impl Node<Tagged> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Tagged>, _from: NodeId, msg: Tagged) {
            self.deliveries.push((msg.seq, ctx.now.as_us()));
        }
        impl_node_any!();
    }

    /// Emits a fixed schedule of messages toward a target.
    struct Emitter {
        target: NodeId,
        schedule: Vec<(i64, usize)>, // (send at ms, payload bytes)
        next: usize,
    }
    impl Node<Tagged> for Emitter {
        fn on_start(&mut self, ctx: &mut Context<'_, Tagged>) {
            if !self.schedule.is_empty() {
                ctx.set_timer(SimDuration::from_ms(self.schedule[0].0.max(1)), 1);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, Tagged>, _: NodeId, _: Tagged) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Tagged>, _timer: u64) {
            let (_, bytes) = self.schedule[self.next];
            ctx.send(
                self.target,
                Tagged {
                    seq: self.next as u64,
                    payload_len: bytes,
                },
            );
            self.next += 1;
            if self.next < self.schedule.len() {
                let delay = self.schedule[self.next].0 - self.schedule[self.next - 1].0;
                ctx.set_timer(SimDuration::from_ms(delay.max(1)), 1);
            }
        }
        impl_node_any!();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Simulator invariants for any message schedule:
        /// (1) virtual time at each delivery never precedes the send time
        ///     plus the topology's base latency;
        /// (2) equal-size messages between the same pair deliver FIFO;
        /// (3) the run is deterministic (same schedule, same deliveries).
        #[test]
        fn delivery_invariants(
            mut gaps in prop::collection::vec((1i64..50, 0usize..4000), 1..40),
            cross_dc in any::<bool>(),
        ) {
            // build an absolute schedule from the gaps
            let mut t = 0;
            for (at, _) in gaps.iter_mut() {
                t += *at;
                *at = t;
            }
            let run = |schedule: Vec<(i64, usize)>| {
                let mut sim: Sim<Tagged> = Sim::new(Topology::default(), 3);
                let rx_dc = if cross_dc { "DC2" } else { "DC1" };
                let rx = sim.add_node(
                    NodeMeta::new("rx", "Receivers", rx_dc),
                    Box::new(Recorder::default()),
                );
                sim.add_node(
                    NodeMeta::new("tx", "Senders", "DC1"),
                    Box::new(Emitter {
                        target: rx,
                        schedule,
                        next: 0,
                    }),
                );
                sim.run_all(1_000_000);
                sim.node_as::<Recorder>(rx).unwrap().deliveries.clone()
            };
            let a = run(gaps.clone());
            let b = run(gaps.clone());
            prop_assert_eq!(&a, &b, "nondeterministic delivery");
            prop_assert_eq!(a.len(), gaps.len());

            let base_us = if cross_dc { 60_000 } else { 250 };
            for (seq, arrive_us) in &a {
                let sent_ms = gaps[*seq as usize].0;
                prop_assert!(
                    *arrive_us >= sent_ms * 1_000 + base_us,
                    "arrival before send + latency"
                );
            }
            // FIFO among equal-size messages
            let mut last_by_size: std::collections::HashMap<usize, (u64, i64)> =
                std::collections::HashMap::new();
            let mut by_arrival = a.clone();
            by_arrival.sort_by_key(|(_, t)| *t);
            for (seq, t) in by_arrival {
                let size = gaps[seq as usize].1;
                if let Some((prev_seq, _)) = last_by_size.get(&size) {
                    prop_assert!(
                        *prev_seq < seq,
                        "same-size messages reordered: {prev_seq} after {seq}"
                    );
                }
                last_by_size.insert(size, (seq, t));
            }
        }
    }
}
