//! Virtual time for the discrete-event simulator.
//!
//! The simulator advances a virtual clock in **microseconds**; the Scrub
//! event model timestamps in milliseconds. Experiments need microsecond
//! resolution because the bidding platform's SLO is 20 ms and Scrub's
//! measured latency impact is ~1% of that.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (µs since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub i64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from milliseconds.
    pub fn from_ms(ms: i64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: i64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since epoch.
    pub fn as_us(self) -> i64 {
        self.0
    }

    /// Milliseconds since epoch (truncating).
    pub fn as_ms(self) -> i64 {
        self.0 / 1_000
    }

    /// Seconds since epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

/// A span of virtual time (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SimDuration(pub i64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub fn from_us(us: i64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub fn from_ms(ms: i64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From seconds.
    pub fn from_secs(s: i64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds.
    pub fn as_us(self) -> i64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub fn as_ms(self) -> i64 {
        self.0 / 1_000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ms(5).as_us(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_ms(), 2_000);
        assert_eq!(SimDuration::from_ms(1).as_us(), 1_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10) + SimDuration::from_ms(5);
        assert_eq!(t.as_ms(), 15);
        let d = SimTime::from_ms(15) - SimTime::from_ms(10);
        assert_eq!(d.as_ms(), 5);
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(1);
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(
            SimDuration::from_ms(1) + SimDuration::from_ms(2),
            SimDuration::from_ms(3)
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
        assert_eq!(SimDuration::from_us(42).to_string(), "42µs");
    }
}
