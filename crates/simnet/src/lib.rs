//! # scrub-simnet
//!
//! Deterministic discrete-event cluster/network simulation substrate.
//!
//! The paper evaluates Scrub on Turn's production platform — thousands of
//! machines across data centers worldwide. This crate provides the
//! simulated equivalent: virtual time, a message-passing node model, a
//! topology with per-DC-pair latency and bandwidth, per-link byte
//! accounting (the currency of the Scrub-vs-logging comparison), and a
//! service registry for target-clause resolution. Executions are totally
//! ordered by (time, sequence), so every run is exactly reproducible.

pub mod fault;
pub mod registry;
pub mod sim;
pub mod time;
pub mod topology;

pub use fault::{
    CrashWindow, DropReason, DropRule, FaultPlan, FaultStats, JitterSpike, NodeSel, Partition,
    SendFate,
};
pub use registry::ServiceRegistry;
pub use sim::{Context, Message, Node, NodeId, NodeMeta, Sim};
pub use time::{SimDuration, SimTime};
pub use topology::{LinkStats, Topology, TrafficAccounting};
