//! # scrub-bench
//!
//! The experiment harness: one module per paper figure/table (see
//! DESIGN.md's experiment index E01–E19), each runnable as its own binary
//! (`cargo run -p scrub-bench --release --bin e01_spam`) or all together
//! (`--bin run_all`), plus criterion microbenchmarks of the host tap, the
//! parser, ScrubCentral ingestion and the sketches.
//!
//! Experiments print the regenerated series/table and a `VERDICT` line
//! stating whether the paper's qualitative shape held.

pub mod experiments;
pub mod util;

pub use util::{percentile, sum_stats, Report, Table};

/// True when quick mode is requested (env `SCRUB_BENCH_QUICK=1` or a
/// `--quick` argument): shorter runs, same shapes.
pub fn quick_mode() -> bool {
    std::env::var("SCRUB_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// Run one experiment function and print its report.
pub fn run_and_print(f: fn(bool) -> Report) {
    let report = f(quick_mode());
    print!("{report}");
}
