//! Run every experiment (E01–E19) and print the combined report — the data
//! behind EXPERIMENTS.md. Pass `--quick` for shorter runs.

fn main() {
    let quick = scrub_bench::quick_mode();
    let mut passed = 0;
    let mut failed = Vec::new();
    let all = scrub_bench::experiments::all();
    let total = all.len();
    for (name, f) in all {
        eprintln!("running {name}...");
        let report = f(quick);
        print!("{report}");
        if report.pass {
            passed += 1;
        } else {
            failed.push(report.id);
        }
    }
    println!("==== SUMMARY ====");
    println!("{passed}/{total} experiments reproduce the paper's shape");
    if !failed.is_empty() {
        println!("mismatches: {failed:?}");
        std::process::exit(1);
    }
}
