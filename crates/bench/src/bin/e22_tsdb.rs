//! Binary wrapper for the `e22_tsdb` experiment (see DESIGN.md's index).
//! Pass `--quick` or set `SCRUB_BENCH_QUICK=1` for a shorter run.

fn main() {
    scrub_bench::run_and_print(scrub_bench::experiments::e22_tsdb::run);
}
