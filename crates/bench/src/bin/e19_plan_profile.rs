//! Binary wrapper for the `e19_plan_profile` experiment (see DESIGN.md's index).
//! Pass `--quick` or set `SCRUB_BENCH_QUICK=1` for a shorter run.

fn main() {
    scrub_bench::run_and_print(scrub_bench::experiments::e19_plan_profile::run);
}
