//! Reporting and measurement utilities shared by the experiments.

use std::fmt;

use scrub_agent::StatsSnapshot;
use scrub_core::event::{Event, RequestId, ToEvent};
use scrub_core::schema::EventTypeId;

/// A plain text table for experiment output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                write!(f, "{cell:<w$}  ")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// One experiment's output: what the paper predicts, what we measured, and
/// whether the shape held.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. "E01").
    pub id: &'static str,
    /// Title (paper figure/table reference).
    pub title: &'static str,
    /// The paper's qualitative expectation.
    pub paper: &'static str,
    /// Output sections (tables, series, notes).
    pub body: String,
    /// Did the expectation hold?
    pub pass: bool,
    /// One-line measured summary.
    pub verdict: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        writeln!(f, "PAPER:    {}", self.paper)?;
        writeln!(f)?;
        write!(f, "{}", self.body)?;
        writeln!(f)?;
        writeln!(f, "MEASURED: {}", self.verdict)?;
        writeln!(
            f,
            "VERDICT:  {}",
            if self.pass {
                "shape holds ✓"
            } else {
                "MISMATCH ✗"
            }
        )?;
        writeln!(f)
    }
}

/// q-th percentile of a slice (sorts a copy).
pub fn percentile(values: &[i64], q: f64) -> i64 {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    v[((v.len() - 1) as f64 * q).round() as usize]
}

/// Sum of per-host agent snapshots.
pub fn sum_stats(stats: &[(String, StatsSnapshot)]) -> StatsSnapshot {
    let mut total = StatsSnapshot::default();
    for (_, s) in stats {
        total.events_seen += s.events_seen;
        total.events_active += s.events_active;
        total.predicates_evaluated += s.predicates_evaluated;
        total.events_matched += s.events_matched;
        total.events_sampled_out += s.events_sampled_out;
        total.events_shed += s.events_shed;
        total.events_shipped += s.events_shipped;
        total.fields_projected += s.fields_projected;
        total.bytes_shipped += s.bytes_shipped;
        total.batches_flushed += s.batches_flushed;
        total.retransmits += s.retransmits;
        total.bytes_retransmitted += s.bytes_retransmitted;
        total.acks_pending += s.acks_pending;
        total.heartbeats_sent += s.heartbeats_sent;
        total.retransmit_evictions += s.retransmit_evictions;
        total.trace_spans += s.trace_spans;
        total.trace_spans_shed += s.trace_spans_shed;
    }
    total
}

/// Representative full (unprojected) wire sizes per platform event type,
/// measured by encoding typical instances — what the logging baseline pays
/// per event.
pub struct FullEventSizes {
    /// `bid` event bytes.
    pub bid: usize,
    /// `auction` event bytes (participants list included).
    pub auction: usize,
    /// `exclusion` event bytes.
    pub exclusion: usize,
    /// `impression` event bytes.
    pub impression: usize,
    /// `click` event bytes.
    pub click: usize,
}

/// Measure representative full-event sizes.
pub fn full_event_sizes(auction_participants: usize) -> FullEventSizes {
    use adplatform::events::*;
    let sz = |values: Vec<scrub_core::value::Value>| {
        Event::new(EventTypeId(0), RequestId(1 << 48), 1_000_000, values).approx_bytes()
    };
    FullEventSizes {
        bid: sz(BidEvent {
            user_id: 123_456,
            exchange_id: 2,
            line_item_id: 1_023,
            campaign_id: 104,
            bid_price: 0.97,
            country: "us".into(),
            city: "san jose".into(),
        }
        .into_values()),
        auction: sz(AuctionEvent {
            line_item_ids: vec![1_000; auction_participants],
            bid_prices: vec![0.5; auction_participants],
            winner_line_item_id: 1_000,
            winner_price: 0.9,
            exchange_id: 2,
        }
        .into_values()),
        exclusion: sz(ExclusionEvent {
            line_item_id: 1_023,
            campaign_id: 104,
            reason: "targeting_country".into(),
            exchange_id: 2,
            publisher: "sports".into(),
        }
        .into_values()),
        impression: sz(ImpressionEvent {
            user_id: 123_456,
            line_item_id: 1_023,
            campaign_id: 104,
            exchange_id: 2,
            cost: 0.55,
            model: "A".into(),
        }
        .into_values()),
        click: sz(ClickEvent {
            user_id: 123_456,
            line_item_id: 1_023,
            campaign_id: 104,
            exchange_id: 2,
            model: "A".into(),
        }
        .into_values()),
    }
}

/// Full-log bytes for a production profile.
pub fn full_log_bytes(p: &adplatform::EventProduction, sizes: &FullEventSizes) -> u64 {
    p.bids * sizes.bid as u64
        + p.auctions * sizes.auction as u64
        + p.exclusions * sizes.exclusion as u64
        + p.impressions * sizes.impression as u64
        + p.clicks * sizes.click as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = vec![5, 1, 9, 3, 7];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 5);
        assert_eq!(percentile(&v, 1.0), 9);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("long_header"));
        assert!(s.contains("---"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn full_sizes_sensible() {
        let s = full_event_sizes(30);
        assert!(s.auction > s.bid, "auction carries the participant list");
        assert!(s.exclusion > 20);
        let p = adplatform::EventProduction {
            bids: 10,
            auctions: 10,
            exclusions: 100,
            impressions: 5,
            clicks: 1,
        };
        assert!(full_log_bytes(&p, &s) > 100);
    }
}
