//! Experiment modules, one per paper figure/table (DESIGN.md E01–E22).

pub mod e01_spam;
pub mod e02_exchange;
pub mod e03_ab;
pub mod e04_exclusions;
pub mod e05_cannibal;
pub mod e06_freqcap;
pub mod e07_cpu_overhead;
pub mod e08_latency;
pub mod e09_central_scale;
pub mod e10_sampling;
pub mod e11_vs_logging;
pub mod e12_sketches;
pub mod e13_placement;
pub mod e14_pushdown;
pub mod e15_baggage;
pub mod e16_chaos;
pub mod e17_self_obs;
pub mod e18_tracing;
pub mod e19_plan_profile;
pub mod e20_overload;
pub mod e21_watchdog;
pub mod e22_tsdb;

use crate::Report;

/// An experiment entry point: `quick` flag in, report out.
pub type ExperimentFn = fn(bool) -> Report;

/// All experiments, in index order.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("e01_spam", e01_spam::run as ExperimentFn),
        ("e02_exchange", e02_exchange::run),
        ("e03_ab", e03_ab::run),
        ("e04_exclusions", e04_exclusions::run),
        ("e05_cannibal", e05_cannibal::run),
        ("e06_freqcap", e06_freqcap::run),
        ("e07_cpu_overhead", e07_cpu_overhead::run),
        ("e08_latency", e08_latency::run),
        ("e09_central_scale", e09_central_scale::run),
        ("e10_sampling", e10_sampling::run),
        ("e11_vs_logging", e11_vs_logging::run),
        ("e12_sketches", e12_sketches::run),
        ("e13_placement", e13_placement::run),
        ("e14_pushdown", e14_pushdown::run),
        ("e15_baggage", e15_baggage::run),
        ("e16_chaos", e16_chaos::run),
        ("e17_self_obs", e17_self_obs::run),
        ("e18_tracing", e18_tracing::run),
        ("e19_plan_profile", e19_plan_profile::run),
        ("e20_overload", e20_overload::run),
        ("e21_watchdog", e21_watchdog::run),
        ("e22_tsdb", e22_tsdb::run),
    ]
}
