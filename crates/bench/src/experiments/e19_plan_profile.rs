//! E19 — EXPLAIN ANALYZE plan audit over the paper's five use cases (§2,
//! §5; reconstructed). Runs the spam / new-exchange / A-B / exclusions /
//! cannibalization queries concurrently on the busy bidding workload,
//! collects each query's [`PlanProfile`] (per-operator rows in/out,
//! estimate-vs-actual selectivity, ns attribution), and checks the
//! placement story the paper tells:
//!
//! - host-side operators are selection/projection/sampling ONLY — joins
//!   and aggregations never cost host ns (they run at ScrubCentral);
//! - selection + projection dominate the host-side ns attribution;
//! - the summed host-side operator ns stays inside the paper's ≤2.5 %
//!   CPU envelope (measured exactly like E07, through the calibrated
//!   cost model over a steady-state interval).
//!
//! Results land in `BENCH_plan_profile.json` at the workspace root:
//! per-operator `rows_in` / `rows_out` / `est_rows_out` /
//! `host_ns_share` rows for every query (central operators report a
//! `host_ns_share` of 0).

use scrub_agent::CostModel;
use scrub_obs::PlanProfile;
use scrub_server::{QueryHandle, QueryState, ScrubClient};
use scrub_simnet::SimDuration;

use super::e07_cpu_overhead::busy_config;
use crate::{Report, Table};

/// The five §2 use-case queries, instantiated against the busy workload
/// (same templates as E01–E05, with spans sized for one steady-state
/// measurement interval). `li` is the line item under investigation in
/// the A/B use case — found by [`probe_line_item`], since which line
/// items win impressions is a property of the workload.
fn use_case_queries(
    p: &adplatform::Platform,
    duration_secs: i64,
    li: i64,
) -> Vec<(&'static str, String)> {
    let host = p.sim.metas()[p.bidservers[0].0 as usize].name.clone();
    vec![
        (
            "spam_users",
            format!(
                "Select bid.user_id, COUNT(*) from bid \
                 @[Service in BidServers and Server = '{host}'] \
                 group by bid.user_id window 10 s duration {duration_secs} s"
            ),
        ),
        (
            "new_exchange",
            format!(
                "select impression.exchange_id, COUNT(*) from impression \
                 @[Service in PresentationServers] \
                 sample hosts 50% events 10% \
                 group by impression.exchange_id window 10 s duration {duration_secs} s"
            ),
        ),
        (
            "ab_test",
            format!(
                "Select 1000*AVG(impression.cost) from impression \
                 where impression.line_item_id = {li} \
                 @[Service in PresentationServers] window 1 m duration {duration_secs} s"
            ),
        ),
        (
            "exclusions",
            format!(
                "Select exclusion.reason, COUNT(*) from bid, exclusion \
                 where exclusion.line_item_id = 2000 and bid.exchange_id = 0 \
                 @[Service in BidServers or Service in AdServers] \
                 group by exclusion.reason window 1 m duration {duration_secs} s"
            ),
        ),
        (
            "cannibalization",
            format!(
                "Select impression.line_item_id, COUNT(*), AVG(auction.winner_price) \
                 from auction, impression \
                 where contains(auction.line_item_ids, 1000) \
                 @[Service in AdServers or Service in PresentationServers] \
                 group by impression.line_item_id window 1 m duration {duration_secs} s"
            ),
        ),
    ]
}

/// Host-side ns split of one profile: (selection+projection, sampling).
fn host_split(pp: &PlanProfile) -> (u64, u64) {
    let mut sel_proj = 0u64;
    let mut sampling = 0u64;
    for o in pp.ops.iter().filter(|o| o.host_side) {
        if o.label.starts_with("sampling(") {
            sampling += o.ns;
        } else {
            sel_proj += o.ns;
        }
    }
    (sel_proj, sampling)
}

/// Find the line item winning the most impressions in this workload —
/// the one the A/B use case investigates.
fn probe_line_item(p: &mut adplatform::Platform) -> i64 {
    let probe = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            "Select impression.line_item_id, COUNT(*) from impression \
             @[Service in PresentationServers] \
             group by impression.line_item_id window 10 s duration 10 s",
        )
        .expect("probe accepted");
    let deadline = p.sim.now() + SimDuration::from_secs(90);
    while p.sim.now() < deadline && probe.state(&p.sim) != Some(QueryState::Done) {
        let step_to = p.sim.now() + SimDuration::from_secs(5);
        p.sim.run_until(step_to);
    }
    probe
        .record(&p.sim)
        .into_iter()
        .flat_map(|r| r.rows.iter())
        .filter_map(|row| Some((row.values[0].as_i64()?, row.values[1].as_i64()?)))
        .max_by_key(|(_, count)| *count)
        .map(|(li, _)| li)
        .unwrap_or(1000)
}

/// Run E19.
pub fn run(quick: bool) -> Report {
    let measure_secs: i64 = if quick { 20 } else { 60 };
    let duration_secs = measure_secs + 30; // covers warm-up + measurement
    let mut p = adplatform::build_platform(busy_config(quick));
    let li = probe_line_item(&mut p);
    let queries = use_case_queries(&p, duration_secs, li);
    let handles: Vec<(&'static str, QueryHandle)> = queries
        .iter()
        .map(|(name, src)| {
            (
                *name,
                ScrubClient::new(&p.scrub)
                    .submit(&mut p.sim, src)
                    .expect("query accepted"),
            )
        })
        .collect();

    // Warm up, then measure host CPU over a steady-state interval with
    // all five queries live (the E07 method: agent work -> calibrated
    // cost model -> fraction of wall time).
    let t0 = p.sim.now();
    p.sim.run_until(t0 + SimDuration::from_secs(10));
    let before = p.agent_stats();
    p.sim
        .run_until(t0 + SimDuration::from_secs(10 + measure_secs));
    let after = p.agent_stats();
    let model = CostModel::default();
    let mut max_pct = 0.0f64;
    for ((_, b), (_, a)) in before.iter().zip(after.iter()) {
        let pct = model.cpu_fraction(&a.since(b), measure_secs as f64 * 1e9) * 100.0;
        max_pct = max_pct.max(pct);
    }

    // Run the spans out (plus drain) so every profile is the retained
    // end-of-query copy, then collect them.
    let deadline = t0 + SimDuration::from_secs(duration_secs + 120);
    while p.sim.now() < deadline
        && handles
            .iter()
            .any(|(_, h)| h.state(&p.sim) != Some(QueryState::Done))
    {
        let step_to = p.sim.now() + SimDuration::from_secs(5);
        p.sim.run_until(step_to);
    }
    let profiles: Vec<(&'static str, PlanProfile)> = handles
        .iter()
        .filter_map(|(name, h)| h.plan_profile(&p.sim).map(|pp| (*name, pp)))
        .collect();

    let mut t = Table::new(&[
        "use_case",
        "host_ns",
        "sel_proj_share",
        "sampling_share",
        "max_est_err_pp",
        "placement_ok",
    ]);
    let mut placement_ok = true;
    let mut total_sel_proj = 0u64;
    let mut total_sampling = 0u64;
    let mut host_rows = 0u64;
    for (name, pp) in &profiles {
        let ok = pp.host_ops_are_select_project_sample();
        placement_ok &= ok;
        let (sel_proj, sampling) = host_split(pp);
        total_sel_proj += sel_proj;
        total_sampling += sampling;
        host_rows += pp
            .ops
            .iter()
            .filter(|o| o.host_side)
            .map(|o| o.rows_in)
            .max()
            .unwrap_or(0);
        let host_ns = pp.host_ns().max(1);
        t.row(vec![
            name.to_string(),
            pp.host_ns().to_string(),
            format!("{:.1}%", sel_proj as f64 / host_ns as f64 * 100.0),
            format!("{:.1}%", sampling as f64 / host_ns as f64 * 100.0),
            format!("{:.1}", pp.max_estimate_error() * 100.0),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }

    write_bench_json(quick, max_pct, &profiles);

    let sel_proj_dominate = total_sel_proj >= total_sampling;
    let pass = profiles.len() == handles.len()
        && placement_ok
        && sel_proj_dominate
        && host_rows > 0
        && max_pct <= 2.5;
    Report {
        id: "E19",
        title: "EXPLAIN ANALYZE plan audit: placement + host-overhead attribution (§2/§5)",
        paper: "selection/projection/sampling run on hosts (joins and aggregations cost \
                zero host ns); host overhead stays within the 2.5% CPU envelope",
        body: t.to_string(),
        pass,
        verdict: format!(
            "{}/{} profiles, placement invariant {}, selection+projection {:.0}% of \
             host ns, max host CPU {max_pct:.2}% (envelope 2.5%)",
            profiles.len(),
            handles.len(),
            if placement_ok { "holds" } else { "VIOLATED" },
            total_sel_proj as f64 / (total_sel_proj + total_sampling).max(1) as f64 * 100.0,
        ),
    }
}

/// Persist the audit as `BENCH_plan_profile.json` at the workspace root —
/// per-operator `rows_in`/`rows_out`/`est_rows_out`/`host_ns_share` for
/// every use-case query (CI validates this schema).
fn write_bench_json(quick: bool, max_pct: f64, profiles: &[(&'static str, PlanProfile)]) {
    let queries: Vec<String> = profiles
        .iter()
        .map(|(name, pp)| {
            let host_ns = pp.host_ns().max(1);
            let operators: Vec<String> = pp
                .ops
                .iter()
                .map(|o| {
                    format!(
                        "        {{ \"id\": {}, \"label\": {:?}, \"host_side\": {}, \
                         \"rows_in\": {}, \"rows_out\": {}, \"est_rows_out\": {}, \
                         \"host_ns_share\": {:.4} }}",
                        o.id,
                        o.label,
                        o.host_side,
                        o.rows_in,
                        o.rows_out,
                        o.est_rows_out(),
                        if o.host_side {
                            o.ns as f64 / host_ns as f64
                        } else {
                            0.0
                        },
                    )
                })
                .collect();
            format!(
                "    {{\n      \"use_case\": {name:?},\n      \"query_id\": {},\n      \
                 \"host_ns\": {},\n      \"central_ns\": {},\n      \
                 \"max_estimate_error\": {:.4},\n      \"operators\": [\n{}\n      ]\n    }}",
                pp.query_id,
                pp.host_ns(),
                pp.central_ns(),
                pp.max_estimate_error(),
                operators.join(",\n"),
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"bench\": \"plan_profile\",\n  \"experiment\": \"E19\",\n  \
         \"workload\": \"five paper use-case queries, concurrent, busy bidding workload\",\n  \
         \"quick\": {quick},\n  \"max_host_cpu_pct\": {max_pct:.3},\n  \
         \"envelope_pct\": 2.5,\n  \"queries\": [\n{}\n  ]\n}}\n",
        queries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan_profile.json");
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("E19: could not write {path}: {e}");
    }
}
