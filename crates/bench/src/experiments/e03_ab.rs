//! E03 — §8.3 A/B testing of ad targeting models, Figures 13, 14, 15a/15b.
//!
//! Per model: CPM = 1000·AVG(impression.cost) and CTR = clicks/impressions,
//! computed by queries targeting the server list of each model. Expected:
//! model B's CTR exceeds A's (the planted multiplier) while CPM stays flat.

use adplatform::scenario;

use scrub_server::{QueryHandle, ScrubClient};
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Run E03.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 4 } else { 10 };
    let cfg = scenario::ab_test();
    let expected_ratio = cfg.model_b_ctr_mult / cfg.model_a_ctr_mult;
    let li = scenario::AB_LINE_ITEM;
    let mut p = adplatform::build_platform(cfg);

    let quote = |hosts: &[String]| {
        hosts
            .iter()
            .map(|h| format!("'{h}'"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let a_hosts = quote(&p.pres_hosts_for_model("A"));
    let b_hosts = quote(&p.pres_hosts_for_model("B"));

    let mut q = |select: &str, event: &str, hosts: &str| -> QueryHandle {
        ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "Select {select} from {event} where {event}.line_item_id = {li} \
                 @[Servers in ({hosts})] window 1 m duration {minutes} m"
                ),
            )
            .expect("query accepted")
    };

    let cpm_a = q("1000*AVG(impression.cost)", "impression", &a_hosts);
    let cpm_b = q("1000*AVG(impression.cost)", "impression", &b_hosts);
    let imp_a = q("COUNT(*)", "impression", &a_hosts);
    let imp_b = q("COUNT(*)", "impression", &b_hosts);
    let clk_a = q("COUNT(*)", "click", &a_hosts);
    let clk_b = q("COUNT(*)", "click", &b_hosts);

    p.sim
        .run_until(SimTime::from_secs(minutes as i64 * 60 + 60));

    let total = |qid: QueryHandle| -> f64 {
        qid.record(&p.sim)
            .map(|r| r.rows.iter().filter_map(|row| row.values[0].as_f64()).sum())
            .unwrap_or(0.0)
    };
    let avg = |qid: QueryHandle| -> f64 {
        qid.record(&p.sim)
            .map(|r| {
                let v: Vec<f64> = r
                    .rows
                    .iter()
                    .filter_map(|row| row.values[0].as_f64())
                    .collect();
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            })
            .unwrap_or(0.0)
    };

    let (cpm_a, cpm_b) = (avg(cpm_a), avg(cpm_b));
    let (ia, ib) = (total(imp_a), total(imp_b));
    let (ca, cb) = (total(clk_a), total(clk_b));
    let ctr = |c: f64, i: f64| if i > 0.0 { c / i } else { 0.0 };
    let (ctr_a, ctr_b) = (ctr(ca, ia), ctr(cb, ib));

    let mut t = Table::new(&["model", "CPM", "impressions", "clicks", "CTR"]);
    t.row(vec![
        "A".into(),
        format!("{cpm_a:.1}"),
        format!("{ia:.0}"),
        format!("{ca:.0}"),
        format!("{ctr_a:.4}"),
    ]);
    t.row(vec![
        "B".into(),
        format!("{cpm_b:.1}"),
        format!("{ib:.0}"),
        format!("{cb:.0}"),
        format!("{ctr_b:.4}"),
    ]);

    let ctr_ratio = ctr_b / ctr_a.max(1e-12);
    let cpm_ratio = cpm_b / cpm_a.max(1e-12);
    let pass = ctr_ratio > 1.10
        && (ctr_ratio - expected_ratio).abs() / expected_ratio < 0.35
        && (0.85..=1.15).contains(&cpm_ratio);
    Report {
        id: "E03",
        title: "A/B test of targeting models (Figs 13-15)",
        paper: "B achieves a higher CTR than A while keeping CPM about the same",
        body: t.to_string(),
        pass,
        verdict: format!(
            "CTR(B)/CTR(A) = {ctr_ratio:.2} (planted {expected_ratio:.2}), \
             CPM(B)/CPM(A) = {cpm_ratio:.2}"
        ),
    }
}
