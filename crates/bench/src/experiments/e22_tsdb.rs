//! E22 — multi-resolution telemetry: long-horizon chaos forensics
//! (self-observability; no paper figure).
//!
//! The telemetry store (PR 10) keeps a short raw snapshot ring plus two
//! bounded rollup tiers. This experiment runs the E16 chaos scenario for
//! an order of magnitude longer than the raw ring's horizon and shows the
//! store earns its keep:
//!
//! - **forensics past the raw horizon**: the crashed BidServer goes down
//!   at 120 s; by the end of the run the raw tier starts hundreds of
//!   seconds later, so the suspected-hosts gauge reads as a flat line
//!   there. The coarse tier still covers the crash, its first rolled
//!   point with an upward step brackets the suspicion tick, and that
//!   point's exemplar request id resolves to a real trace with a span
//!   inside the max-delta interval — raw ring long gone.
//! - **compression and bounded memory**: the coarse tier spends far more
//!   milliseconds per retained point than the raw ring (ratio > 1 by
//!   construction, ~26x here), and the mid tier — sized so the run seals
//!   several times its cap — never holds more than `tsdb_tier_cap`
//!   points per metric.
//! - **dogfooding equivalence**: a ScrubQL query over the `scrub_metric`
//!   meta-stream (`SUM(scrub_metric.delta)` in 20 s windows) returns, for
//!   interior windows, exactly the sums of the raw tier's per-tick deltas
//!   for the same metric.
//! - **determinism**: `range`-style renders of every partition-invariant
//!   metric are byte-identical across two seeded runs, and the rolled
//!   tiers are identical at `central_partitions` 1 vs 4.
//!
//! Results land in `BENCH_tsdb.json` at the workspace root (CI validates
//! the schema: three tiers, coarse coverage spanning the crash, and a
//! compression ratio above 1).

use adplatform::{scenario, PlatformMsg};
use scrub_obs::{partition_invariant, Resolution, RolledPoint};
use scrub_server::{CentralNode, QueryState, ScrubClient};
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Raw ring length (snapshots); at the 2.5 s advance tick this is a 60 s
/// horizon — an order of magnitude shorter than the run.
const RAW_RING: usize = 24;
/// Mid tier: 5 ticks = 12.5 s buckets.
const MID_FACTOR: usize = 5;
/// Coarse tier: 25 ticks = 62.5 s buckets.
const COARSE_FACTOR: usize = 25;
/// Points per metric per rolled tier. The run seals ~56 mid buckets, so
/// the mid tier demonstrably evicts; coarse (~11 buckets) keeps the full
/// span.
const TIER_CAP: usize = 16;
/// The counter the compression figures and the meta-query read.
const PROBE_METRIC: &str = "central.events_ingested";
/// The gauge whose onset the coarse tier must localize.
const ONSET_METRIC: &str = "central.hosts_suspected";
/// Interior windows of the 60 s meta-query (submitted at 300 s) compared
/// against the raw tier — the first/last windows straddle tap start/stop.
const META_WINDOWS: [i64; 2] = [320_000, 340_000];

/// One retention tier as observed at the end of a run.
struct TierRow {
    res: Resolution,
    cover: Option<(i64, i64)>,
    /// Retained points of [`PROBE_METRIC`].
    points: usize,
    /// Milliseconds of history per retained point — the compression axis.
    ms_per_point: f64,
}

/// Everything one run leaves behind.
struct Observed {
    /// `render_range` of every partition-invariant metric, mid + coarse —
    /// compared across partition counts.
    renders_rolled: String,
    /// Same plus the raw tier — the two-seeded-runs byte-stability probe.
    renders_all: String,
    raw_cover: (i64, i64),
    coarse_cover: (i64, i64),
    /// No raw-tier interval shows the suspected-hosts gauge moving.
    raw_flat: bool,
    /// First coarse point of [`ONSET_METRIC`] containing an upward step.
    onset: Option<RolledPoint>,
    /// The onset exemplar rid resolves to a trace with a span inside the
    /// point's max-delta interval.
    exemplar_trace_ok: bool,
    tiers: Vec<TierRow>,
    /// coarse ms-per-point over raw ms-per-point.
    compression_ratio: f64,
    /// Most mid-tier points any metric holds (must be ≤ [`TIER_CAP`]).
    mid_max_per_metric: usize,
    /// Mid buckets the run sealed (must exceed the cap for the bounded
    /// claim to mean anything).
    mid_buckets_elapsed: usize,
    out_of_order: u64,
    /// Crash suspicion tick: crash time + host grace.
    suspect_ms: i64,
    /// Probe-query lifetime (the run length proper).
    run_secs: i64,
    /// `(window_start_ms, meta_sum, raw_range_sum)` per interior window.
    meta_windows: Vec<(i64, i64, i64)>,
    meta_done: bool,
}

/// One chaos run with the short raw ring and rolled tiers dialed in.
fn run_once(partitions: usize, quick: bool) -> Observed {
    let run_secs: i64 = if quick { 660 } else { 900 };
    let mut cfg = scenario::spam_under_chaos();
    cfg.scrub.trace_sample_rate = 0.05;
    cfg.scrub.central_partitions = partitions;
    cfg.scrub.obs_history_len = RAW_RING;
    cfg.scrub.tsdb_mid_factor = MID_FACTOR;
    cfg.scrub.tsdb_coarse_factor = COARSE_FACTOR;
    cfg.scrub.tsdb_tier_cap = TIER_CAP;
    let suspect_ms = scenario::CHAOS_CRASH_AT_SECS * 1000 + cfg.scrub.host_grace_ms;
    let mut p = adplatform::build_platform(cfg);
    let client = ScrubClient::new(&p.scrub);
    let probe = client
        .submit(
            &mut p.sim,
            &format!(
                "select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
                 group by bid.user_id window 10 s duration {run_secs} s"
            ),
        )
        .expect("probe query accepted");

    // Mid-run, dogfood the store through ScrubQL: a meta-query over the
    // `scrub_metric` stream whose windowed sums must equal the raw tier's
    // per-tick deltas.
    p.sim.run_until(SimTime::from_secs(300));
    let meta = client
        .submit(
            &mut p.sim,
            &format!(
                "select SUM(scrub_metric.delta) from scrub_metric \
                 where scrub_metric.metric = '{PROBE_METRIC}' \
                 @[Service in ScrubCentral] window 20 s duration 60 s"
            ),
        )
        .expect("meta-query accepted");
    // Let it finish, then compare while the raw ring (57.5 s horizon)
    // still covers the interior windows.
    p.sim.run_until(SimTime::from_secs(375));
    let meta_done = meta.state(&p.sim) == Some(QueryState::Done);
    let meta_windows: Vec<(i64, i64, i64)> = {
        let central = p
            .sim
            .node_as::<CentralNode<PlatformMsg>>(p.scrub.central)
            .expect("central node");
        let deltas = central.telemetry().deltas(PROBE_METRIC, Resolution::Raw);
        let rec = meta.record(&p.sim);
        META_WINDOWS
            .iter()
            .map(|&w| {
                let range_sum: i64 = deltas
                    .iter()
                    .filter(|d| d.at_ms >= w && d.at_ms < w + 20_000)
                    .map(|d| d.value)
                    .sum();
                // SUM comes back as a Double; the summed deltas are
                // integral, so the round-trip through f64 is exact.
                let meta_sum = rec
                    .and_then(|r| r.rows.iter().find(|row| row.window_start_ms == w))
                    .and_then(|row| row.values.last().and_then(|v| v.as_f64()))
                    .map_or(-1, |v| v as i64);
                (w, meta_sum, range_sum)
            })
            .collect()
    };

    p.sim.run_until(SimTime::from_secs(run_secs + 45));

    let central = p
        .sim
        .node_as::<CentralNode<PlatformMsg>>(p.scrub.central)
        .expect("central node");
    let store = central.telemetry();
    let invariant: Vec<String> = store
        .metric_names()
        .into_iter()
        .filter(|m| partition_invariant(m))
        .collect();
    let mut renders_rolled = String::new();
    let mut renders_all = String::new();
    for m in &invariant {
        for res in Resolution::ALL {
            let r = store.render_range(m, res, None);
            if res != Resolution::Raw {
                renders_rolled.push_str(&r);
            }
            renders_all.push_str(&r);
        }
    }

    // While the probe query is alive the suspected-host gauge sits flat
    // at its post-crash value, so the raw window cannot localize the
    // onset. (After the query completes, suspicion tracking tears down
    // and the gauge steps back to 0 — that teardown is not the fault.)
    let raw_points = store.points(ONSET_METRIC, Resolution::Raw);
    let in_query: Vec<&RolledPoint> = raw_points
        .iter()
        .filter(|pt| pt.at_ms <= run_secs * 1000)
        .collect();
    let raw_flat = !in_query.is_empty() && in_query.iter().all(|pt| pt.delta == 0);
    let onset = store
        .points(ONSET_METRIC, Resolution::Coarse)
        .into_iter()
        .find(|pt| pt.max_at_ms > 0);
    let exemplar_trace_ok = onset.as_ref().is_some_and(|o| {
        o.exemplar.is_some_and(|rid| {
            probe.traces(&p.sim).is_some_and(|ts| {
                ts.trace(rid).is_some_and(|spans| {
                    spans
                        .iter()
                        .any(|s| s.at_ms > o.max_from_ms && s.at_ms <= o.max_at_ms)
                })
            })
        })
    });

    let tiers: Vec<TierRow> = Resolution::ALL
        .iter()
        .map(|&res| {
            let cover = store.covered_range(res);
            let points = store.points(PROBE_METRIC, res).len();
            let ms_per_point = cover.map_or(0.0, |(a, b)| (b - a) as f64 / points.max(1) as f64);
            TierRow {
                res,
                cover,
                points,
                ms_per_point,
            }
        })
        .collect();
    let compression_ratio = tiers[2].ms_per_point / tiers[0].ms_per_point.max(f64::EPSILON);
    let mid_max_per_metric = store
        .metric_names()
        .iter()
        .map(|m| store.points(m, Resolution::Mid).len())
        .max()
        .unwrap_or(0);
    let tick_ms = tiers[0].ms_per_point.max(1.0);
    let mid_buckets_elapsed = (p.sim.now().as_ms() as f64 / (tick_ms * MID_FACTOR as f64)) as usize;

    Observed {
        renders_rolled,
        renders_all,
        raw_cover: store.covered_range(Resolution::Raw).unwrap_or((0, 0)),
        coarse_cover: store.covered_range(Resolution::Coarse).unwrap_or((0, 0)),
        raw_flat,
        onset,
        exemplar_trace_ok,
        tiers,
        compression_ratio,
        mid_max_per_metric,
        mid_buckets_elapsed,
        out_of_order: store.out_of_order(),
        suspect_ms,
        run_secs,
        meta_windows,
        meta_done,
    }
}

fn fmt_cover(c: Option<(i64, i64)>) -> String {
    c.map_or("(empty)".into(), |(a, b)| format!("({a}, {b}]"))
}

/// Run E22.
pub fn run(quick: bool) -> Report {
    let a = run_once(1, quick);
    let b = run_once(1, quick);
    let p4 = run_once(4, quick);

    let byte_stable = a.renders_all == b.renders_all;
    let partition_inv = a.renders_rolled == p4.renders_rolled;
    let crash_ms = scenario::CHAOS_CRASH_AT_SECS * 1000;
    let crash_older = a.raw_cover.0 > crash_ms;
    // The in-progress coarse bucket is not sealed yet, so the coarse
    // cover trails the raw cover by up to one bucket; "covers the run"
    // means it starts before the crash and spans at least 80% of it.
    let coarse_covers = a.coarse_cover.0 <= crash_ms
        && (a.coarse_cover.1 - a.coarse_cover.0) * 10 >= a.run_secs * 1000 * 8;
    let onset_located = a
        .onset
        .as_ref()
        .is_some_and(|o| o.start_ms <= a.suspect_ms && a.suspect_ms <= o.at_ms);
    let meta_match = a.meta_done
        && !a.meta_windows.is_empty()
        && a.meta_windows.iter().all(|&(_, m, r)| m == r && m > 0);
    let bounded = a.mid_max_per_metric <= TIER_CAP && a.mid_buckets_elapsed > TIER_CAP;
    let compression = a.compression_ratio > 1.0;

    let mut t = Table::new(&[
        "tier",
        "cover_ms",
        "points(events_ingested)",
        "ms_per_point",
    ]);
    for tr in &a.tiers {
        t.row(vec![
            tr.res.to_string(),
            fmt_cover(tr.cover),
            tr.points.to_string(),
            format!("{:.1}", tr.ms_per_point),
        ]);
    }
    let mut mt = Table::new(&["window_start_ms", "meta_sum", "raw_range_sum"]);
    for &(w, m, r) in &a.meta_windows {
        mt.row(vec![w.to_string(), m.to_string(), r.to_string()]);
    }
    let onset_line = a.onset.as_ref().map_or("onset: (not found)".into(), |o| {
        format!(
            "onset: coarse bucket ({}, {}] brackets suspicion at {} ms; \
             max-delta interval ({}, {}], exemplar rid {:?}",
            o.start_ms, o.at_ms, a.suspect_ms, o.max_from_ms, o.max_at_ms, o.exemplar
        )
    });
    let body = format!("{t}\n{onset_line}\n\nmeta-query vs raw tier ({PROBE_METRIC}):\n{mt}");

    write_bench_json(quick, &a, byte_stable, partition_inv, crash_ms);

    let pass = crash_older
        && coarse_covers
        && a.raw_flat
        && onset_located
        && a.exemplar_trace_ok
        && compression
        && bounded
        && byte_stable
        && partition_inv
        && meta_match;
    Report {
        id: "E22",
        title: "Telemetry tiers: chaos forensics past the raw horizon (self-observability)",
        paper: "a bounded multi-resolution store lets a troubleshooter localize a fault \
                that happened long before the raw snapshot ring's horizon: the coarse \
                tier brackets the crash-suspicion tick, its exemplar resolves to a real \
                trace, rollups stay bounded and deterministic across runs and partition \
                counts, and ScrubQL over the scrub_metric stream reproduces the raw \
                tier's windowed sums",
        body,
        pass,
        verdict: format!(
            "crash at {crash_ms} ms vs raw tier starting {} ms (invisible: {}), onset \
             located {onset_located}, exemplar trace ok {}, compression {:.1}x, mid tier \
             ≤{} pts/metric over {} sealed buckets, byte-stable {byte_stable}, \
             partition-invariant {partition_inv}, meta-query matches {meta_match}",
            a.raw_cover.0,
            a.raw_flat,
            a.exemplar_trace_ok,
            a.compression_ratio,
            a.mid_max_per_metric,
            a.mid_buckets_elapsed,
        ),
    }
}

/// Persist the run as `BENCH_tsdb.json` at the workspace root (CI
/// validates the schema, coarse coverage and the compression ratio).
fn write_bench_json(
    quick: bool,
    a: &Observed,
    byte_stable: bool,
    partition_invariant: bool,
    crash_ms: i64,
) {
    let tier_json = |tr: &TierRow| {
        let (c0, c1) = tr.cover.unwrap_or((0, 0));
        format!(
            "    {{ \"res\": \"{}\", \"cover_ms\": [{c0}, {c1}], \"points\": {}, \
             \"ms_per_point\": {:.1} }}",
            tr.res, tr.points, tr.ms_per_point
        )
    };
    let tiers: Vec<String> = a.tiers.iter().map(tier_json).collect();
    let windows: Vec<String> = a
        .meta_windows
        .iter()
        .map(|&(w, m, r)| {
            format!("      {{ \"start_ms\": {w}, \"meta_sum\": {m}, \"range_sum\": {r} }}")
        })
        .collect();
    let onset = a.onset.as_ref().map_or("null".to_string(), |o| {
        format!(
            "{{ \"start_ms\": {}, \"at_ms\": {}, \"exemplar_rid\": {}, \
             \"exemplar_trace_ok\": {} }}",
            o.start_ms,
            o.at_ms,
            o.exemplar.map_or("null".to_string(), |r| r.to_string()),
            a.exemplar_trace_ok,
        )
    });
    let meta_match = a.meta_done && a.meta_windows.iter().all(|&(_, m, r)| m == r && m > 0);
    let doc = format!(
        "{{\n  \"bench\": \"tsdb\",\n  \"experiment\": \"E22\",\n  \
         \"workload\": \"E16 chaos run an order of magnitude past the raw ring horizon\",\n  \
         \"quick\": {quick},\n  \"run_secs\": {},\n  \"crash_at_ms\": {crash_ms},\n  \
         \"suspect_at_ms\": {},\n  \"crash_older_than_raw_horizon\": {},\n  \
         \"raw_tier_flat_at_crash\": {},\n  \"onset\": {onset},\n  \
         \"tiers\": [\n{}\n  ],\n  \"compression_ratio\": {:.1},\n  \
         \"bounded\": {{ \"tier_cap\": {TIER_CAP}, \"mid_max_points_per_metric\": {}, \
         \"mid_buckets_elapsed\": {} }},\n  \"out_of_order_dropped\": {},\n  \
         \"byte_stable\": {byte_stable},\n  \"partition_invariant\": {partition_invariant},\n  \
         \"meta_query\": {{ \"metric\": \"{PROBE_METRIC}\", \"done\": {}, \
         \"windows\": [\n{}\n    ], \"matches\": {meta_match} }}\n}}\n",
        a.run_secs,
        a.suspect_ms,
        a.raw_cover.0 > crash_ms,
        a.raw_flat,
        tiers.join(",\n"),
        a.compression_ratio,
        a.mid_max_per_metric,
        a.mid_buckets_elapsed,
        a.out_of_order,
        a.meta_done,
        windows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tsdb.json");
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("E22: could not write {path}: {e}");
    }
}
