//! E21 — the watchdog: Scrub monitoring Scrub (self-observability; no
//! paper figure).
//!
//! The health plane (PR 9) must *detect* the failure modes earlier
//! experiments only measured. This experiment replays two of them and
//! asserts the default alert rules fire — with provenance a
//! troubleshooter can actually follow — while a fault-free twin stays
//! silent:
//!
//! - **chaos** (E16's scenario): message loss + a DC partition + one
//!   BidServer crashed for good. Expect `host_dead` (the suspected-host
//!   gauge) and `retransmit_storm` (per-interval retransmit deltas) to
//!   fire, the former pointing at a ledger row whose `host_dead` flag is
//!   set, the latter carrying a sampled trace request id whose lifecycle
//!   really contains a Retransmit span.
//! - **overload** (E20's protected ramp): admission control + host
//!   budgets + a tight `max_groups`. Expect `envelope_breach` (budget
//!   shed burn rate) and `groups_overflow` to fire, each resolving to a
//!   query whose ledger/summary shows the attributed loss.
//!
//! Determinism is part of the contract: the chaos run's alert log and
//! flight-recorder timeline must render byte-identically across two
//! runs, and identically at `central_partitions` 1 vs 4. Results land in
//! `BENCH_watchdog.json` at the workspace root (CI validates the schema
//! and that the clean twin fired zero alerts).

use adplatform::PlatformMsg;
use scrub_core::config::AdmissionPolicy;
use scrub_core::plan::QueryId;
use scrub_obs::{render_timeline, AlertEvent, AlertEventKind, SpanKind};
use scrub_server::{CentralNode, QueryHandle, QueryState, ScrubClient};
use scrub_simnet::{SimDuration, SimTime};

use super::e07_cpu_overhead::busy_config;
use crate::{Report, Table};

/// What one run's health plane recorded.
struct Observed {
    /// FIRED events, in log order.
    fired: Vec<AlertEvent>,
    /// ANOMALY events flagged by the z-score detector.
    anomalies: usize,
    /// Byte-stable render of the full alert log.
    alert_render: String,
    /// Byte-stable render of the probe query's flight recorder.
    timeline_render: String,
}

/// Scenario-specific provenance verdicts (checked while the platform is
/// still alive, since they chase ledgers/traces through handles).
#[derive(Default)]
struct ProvChecks {
    /// `host_dead`'s provenance host has `host_dead` set in the ledger.
    host_dead_ok: bool,
    /// `retransmit_storm`'s trace rid resolves to a Retransmit span.
    retransmit_rid_ok: bool,
    /// `envelope_breach` points at a host with ledger `budget_shed > 0`.
    envelope_ok: bool,
    /// `groups_overflow` points at a query whose summary overflowed.
    groups_ok: bool,
}

fn rules_of(o: &Observed) -> Vec<&str> {
    let mut rules: Vec<&str> = o.fired.iter().map(|e| e.rule.as_str()).collect();
    rules.sort();
    rules.dedup();
    rules
}

/// Snapshot the central node's alert log and one query's timeline.
fn observe(p: &adplatform::Platform, probe: QueryHandle) -> Observed {
    let central = p
        .sim
        .node_as::<CentralNode<PlatformMsg>>(p.scrub.central)
        .expect("central node");
    let engine = central.alert_engine();
    let fired: Vec<AlertEvent> = engine
        .log()
        .events()
        .filter(|e| e.kind == AlertEventKind::Fired)
        .cloned()
        .collect();
    let anomalies = engine
        .log()
        .events()
        .filter(|e| e.kind == AlertEventKind::Anomaly)
        .count();
    let alert_render = engine.log().render();
    let (events, dropped) = probe.timeline(&p.sim).unwrap_or_default();
    let timeline_render = render_timeline(probe.id().0, &events, dropped);
    Observed {
        fired,
        anomalies,
        alert_render,
        timeline_render,
    }
}

/// Chase each fired alert's provenance back to the evidence it claims.
fn check_provenance(p: &adplatform::Platform, fired: &[AlertEvent]) -> ProvChecks {
    let mut c = ProvChecks::default();
    for ev in fired {
        let Some(qid) = ev.provenance.query_id else {
            continue;
        };
        let h = QueryHandle::from_id(&p.scrub, QueryId(qid));
        match ev.rule.as_str() {
            "host_dead" => {
                if let (Some(host), Some(ledger)) =
                    (ev.provenance.host.as_ref(), h.loss_ledger(&p.sim))
                {
                    c.host_dead_ok |= ledger.hosts.get(host).is_some_and(|l| l.host_dead);
                }
            }
            "retransmit_storm" => {
                if let (Some(rid), Some(store)) = (ev.provenance.trace_rid, h.traces(&p.sim)) {
                    c.retransmit_rid_ok |= store
                        .trace(rid)
                        .is_some_and(|spans| spans.iter().any(|s| s.kind == SpanKind::Retransmit));
                }
            }
            "envelope_breach" => {
                if let (Some(host), Some(ledger)) =
                    (ev.provenance.host.as_ref(), h.loss_ledger(&p.sim))
                {
                    c.envelope_ok |= ledger.hosts.get(host).is_some_and(|l| l.budget_shed > 0);
                }
            }
            "groups_overflow" => {
                c.groups_ok |= h.summary(&p.sim).is_some_and(|s| s.groups_overflow > 0);
            }
            _ => {}
        }
    }
    c
}

/// One chaos (or fault-free twin) run: E16's scenario with tracing on,
/// watched by the default alert rules.
fn run_chaos(faults: bool, partitions: usize, minutes: i64) -> (Observed, ProvChecks) {
    let mut cfg = adplatform::scenario::spam_under_chaos();
    if !faults {
        cfg.faults = None;
    }
    cfg.scrub.trace_sample_rate = 0.05;
    cfg.scrub.central_partitions = partitions;
    let mut p = adplatform::build_platform(cfg);
    let q = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
                 group by bid.user_id window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));
    let obs = observe(&p, q);
    let prov = check_provenance(&p, &obs.fired);
    (obs, prov)
}

/// One protected-overload run: E20's ramp with admission control, host
/// budgets and a tight group bound, watched by the default alert rules.
fn run_overload(quick: bool) -> (Observed, ProvChecks) {
    let duration_secs: i64 = if quick { 45 } else { 70 };
    let mut cfg = busy_config(quick);
    // E20's envelope-breaking shape: one DC concentrates per-host rates,
    // and a block of never-matching line items adds pure filter load so
    // the budget tracker actually has to shed.
    cfg.dcs = vec!["DC1".into()];
    let extra: Vec<adplatform::LineItem> = (0..180u64)
        .map(|i| {
            let mut li = adplatform::LineItem::new(3000 + i, 300 + i / 6, 0.3);
            li.targeting.segment = Some((i % 8) as u32);
            li.targeting.countries = vec!["zz".into()];
            li
        })
        .collect();
    cfg.line_items.extend(extra);
    cfg.scrub.enforce_host_budget = true;
    cfg.scrub.admission = AdmissionPolicy::Evict;
    cfg.scrub.admission_events_per_host_per_sec = 20_000.0;
    cfg.scrub.max_groups = 64;
    let mut p = adplatform::build_platform(cfg);
    let client = ScrubClient::new(&p.scrub);
    let mut handles: Vec<QueryHandle> = Vec::new();
    for i in 0..20usize {
        let src = format!(
            "{} window 10 s duration {duration_secs} s",
            super::e20_overload::RAMP_QUERIES[i % super::e20_overload::RAMP_QUERIES.len()]
        );
        if let Ok(h) = client.submit(&mut p.sim, &src) {
            handles.push(h);
        }
    }
    let deadline = p.sim.now() + SimDuration::from_secs(duration_secs + 120);
    while p.sim.now() < deadline
        && handles
            .iter()
            .any(|h| h.state(&p.sim) != Some(QueryState::Done))
    {
        let step_to = p.sim.now() + SimDuration::from_secs(5);
        p.sim.run_until(step_to);
    }
    let probe = *handles.first().expect("at least one query admitted");
    let obs = observe(&p, probe);
    let prov = check_provenance(&p, &obs.fired);
    (obs, prov)
}

/// Run E21.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 5 };

    let (chaos, chaos_prov) = run_chaos(true, 1, minutes);
    let (chaos_again, _) = run_chaos(true, 1, minutes);
    let (chaos_p4, _) = run_chaos(true, 4, minutes);
    let (clean, _) = run_chaos(false, 1, minutes);
    let (overload, overload_prov) = run_overload(quick);

    let byte_stable = chaos.alert_render == chaos_again.alert_render
        && chaos.timeline_render == chaos_again.timeline_render;
    let partition_invariant = chaos.alert_render == chaos_p4.alert_render
        && chaos.timeline_render == chaos_p4.timeline_render;

    let mut t = Table::new(&["run", "alerts_fired", "rules", "anomalies"]);
    for (name, o) in [
        ("chaos", &chaos),
        ("chaos (clean twin)", &clean),
        ("overload (protected)", &overload),
    ] {
        t.row(vec![
            name.to_string(),
            o.fired.len().to_string(),
            rules_of(o).join(","),
            o.anomalies.to_string(),
        ]);
    }

    write_bench_json(
        quick,
        &chaos,
        &clean,
        &overload,
        byte_stable,
        partition_invariant,
    );

    let chaos_rules = rules_of(&chaos);
    let overload_rules = rules_of(&overload);
    let chaos_detected =
        chaos_rules.contains(&"host_dead") && chaos_rules.contains(&"retransmit_storm");
    let overload_detected =
        overload_rules.contains(&"envelope_breach") && overload_rules.contains(&"groups_overflow");
    let provenance_ok = chaos_prov.host_dead_ok
        && chaos_prov.retransmit_rid_ok
        && overload_prov.envelope_ok
        && overload_prov.groups_ok;
    let clean_silent = clean.fired.is_empty();
    let journal_complete = ["dispatched", "window_close", "retransmit", "host_dead"]
        .iter()
        .all(|k| chaos.timeline_render.contains(k));

    let pass = chaos_detected
        && overload_detected
        && provenance_ok
        && clean_silent
        && byte_stable
        && partition_invariant
        && journal_complete;
    Report {
        id: "E21",
        title: "Watchdog: the health plane detects chaos and overload (self-observability)",
        paper: "a troubleshooter for production systems must troubleshoot itself: the \
                default alert rules detect the E16 chaos (host_dead, retransmit_storm) \
                and the E20 overload (envelope_breach, groups_overflow) with provenance \
                that resolves to real ledger rows and trace ids, a fault-free twin stays \
                silent, and the alert log + flight recorder render deterministically \
                across runs and partition counts",
        body: t.to_string(),
        pass,
        verdict: format!(
            "chaos fired [{}] (prov ok: {}), overload fired [{}] (prov ok: {}), \
             clean twin fired {}, byte-stable {byte_stable}, partition-invariant \
             {partition_invariant}",
            chaos_rules.join(","),
            chaos_prov.host_dead_ok && chaos_prov.retransmit_rid_ok,
            overload_rules.join(","),
            overload_prov.envelope_ok && overload_prov.groups_ok,
            clean.fired.len(),
        ),
    }
}

/// Persist the runs as `BENCH_watchdog.json` at the workspace root (CI
/// validates this schema and the clean twin's silence).
fn write_bench_json(
    quick: bool,
    chaos: &Observed,
    clean: &Observed,
    overload: &Observed,
    byte_stable: bool,
    partition_invariant: bool,
) {
    let opt_u64 = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
    let opt_str = |v: Option<&String>| v.map_or("null".to_string(), |s| format!("{s:?}"));
    let alert_json = |ev: &AlertEvent| {
        format!(
            "        {{ \"rule\": {:?}, \"metric\": {:?}, \"fired_at_ms\": {}, \
             \"value\": {}, \"provenance\": {{ \"query_id\": {}, \"host\": {}, \
             \"ledger_column\": {}, \"trace_rid\": {} }} }}",
            ev.rule,
            ev.metric,
            ev.at_ms,
            ev.value,
            opt_u64(ev.provenance.query_id),
            opt_str(ev.provenance.host.as_ref()),
            opt_str(ev.provenance.ledger_column.as_ref()),
            opt_u64(ev.provenance.trace_rid),
        )
    };
    let run_json = |name: &str, o: &Observed| {
        let alerts: Vec<String> = o.fired.iter().map(alert_json).collect();
        let alerts = if alerts.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n      ]", alerts.join(",\n"))
        };
        format!(
            "    {{\n      \"name\": {name:?},\n      \"alerts_fired\": {},\n      \
             \"anomalies\": {},\n      \"alerts\": {alerts}\n    }}",
            o.fired.len(),
            o.anomalies,
        )
    };
    let doc = format!(
        "{{\n  \"bench\": \"watchdog\",\n  \"experiment\": \"E21\",\n  \
         \"workload\": \"E16 chaos + E20 protected overload, watched by the default alert rules\",\n  \
         \"quick\": {quick},\n  \"byte_stable\": {byte_stable},\n  \
         \"partition_invariant\": {partition_invariant},\n  \
         \"clean_alerts_fired\": {},\n  \"runs\": [\n{},\n{},\n{}\n  ]\n}}\n",
        clean.fired.len(),
        run_json("chaos", chaos),
        run_json("chaos_clean", clean),
        run_json("overload_protected", overload),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_watchdog.json");
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("E21: could not write {path}: {e}");
    }
}
