//! E10 — sampling accuracy and error bounds (§3.2, Equations 1–3;
//! reconstructed).
//!
//! Two parts:
//! 1. **End-to-end**: the same live traffic is observed by an exact
//!    SUM-query and by sampled variants at several event-sampling rates;
//!    relative error should shrink with the rate and the Eq-2 bound should
//!    contain the truth.
//! 2. **Coverage**: 200 synthetic two-stage-sampling trials per rate; the
//!    95% bound must cover the true total at roughly its nominal rate.

#![allow(clippy::field_reassign_with_default)]

use adplatform::PlatformConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scrub_server::{QueryHandle, ScrubClient};
use scrub_simnet::SimTime;
use scrub_sketch::{estimate_total, HostSample};

use crate::{Report, Table};

fn e2e_part(quick: bool) -> (Table, bool, String) {
    let mins = if quick { 2 } else { 4 };
    let mut cfg = PlatformConfig::default();
    cfg.seed = 810;
    cfg.page_views_per_sec = if quick { 80.0 } else { 150.0 };
    cfg.bidservers_per_dc = 4; // enough hosts for host sampling
    let mut p = adplatform::build_platform(cfg);

    let rates = ["100", "50", "25", "10", "5"];
    let mut qids = Vec::new();
    for rate in rates {
        let sample = if rate == "100" {
            String::new()
        } else {
            format!("sample events {rate}%")
        };
        let qid = ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "select SUM(bid.bid_price) from bid @[Service in BidServers] \
                 {sample} window 10 s duration {mins} m"
                ),
            )
            .expect("query accepted");
        qids.push((rate, qid));
    }
    p.sim.run_until(SimTime::from_secs(mins * 60 + 60));

    // ground truth: the exact query's whole-span total
    let span_total = |qid: QueryHandle| -> f64 {
        qid.record(&p.sim)
            .map(|r| r.rows.iter().filter_map(|row| row.values[0].as_f64()).sum())
            .unwrap_or(0.0)
    };
    let truth = span_total(qids[0].1);

    let mut t = Table::new(&[
        "event_rate_pct",
        "estimate",
        "rel_err_pct",
        "bound(eps)",
        "truth_in_bound",
    ]);
    let mut errs = Vec::new();
    let mut all_rows_ok = true;
    for (rate, qid) in &qids[1..] {
        let rec = qid.record(&p.sim).expect("accepted");
        let est = rec
            .summary
            .as_ref()
            .and_then(|s| s.estimates.first().copied().flatten());
        let Some(est) = est else {
            all_rows_ok = false;
            continue;
        };
        let rel = (est.estimate - truth).abs() / truth.max(1e-9) * 100.0;
        let covered = (est.estimate - truth).abs() <= est.error_bound;
        errs.push((rate.parse::<f64>().unwrap(), rel, covered));
        t.row(vec![
            rate.to_string(),
            format!("{:.1}", est.estimate),
            format!("{rel:.2}"),
            format!("{:.1}", est.error_bound),
            covered.to_string(),
        ]);
    }

    // error at the highest sampled rate must beat error at the lowest
    let err_hi_rate = errs.first().map(|e| e.1).unwrap_or(100.0);
    let err_lo_rate = errs.last().map(|e| e.1).unwrap_or(0.0);
    let covered_all = errs.iter().filter(|e| e.2).count() >= errs.len().saturating_sub(1);
    let pass = all_rows_ok && err_hi_rate <= err_lo_rate + 1.0 && covered_all;
    let note = format!(
        "truth {truth:.0}; rel err {err_hi_rate:.2}% @50% vs {err_lo_rate:.2}% @5%; \
         {}/{} bounds contain the truth",
        errs.iter().filter(|e| e.2).count(),
        errs.len()
    );
    (t, pass, note)
}

fn coverage_part(quick: bool) -> (Table, bool, String) {
    let trials = if quick { 60 } else { 200 };
    let mut t = Table::new(&["event_rate_pct", "coverage_pct", "mean_rel_err_pct"]);
    let mut min_cov = 100.0f64;
    let mut errs_by_rate = Vec::new();
    for rate in [0.05, 0.1, 0.25, 0.5] {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut covered = 0usize;
        let mut err_sum = 0.0;
        for _ in 0..trials {
            // population: 30 hosts, 200 values each, host sampling 40%
            let mut truth = 0.0;
            let mut hosts = Vec::new();
            let total_hosts = 30;
            for _ in 0..total_hosts {
                let selected = rng.gen_bool(0.4);
                let mut hs = HostSample::new();
                for _ in 0..200 {
                    let v: f64 = rng.gen_range(0.0..10.0);
                    truth += v;
                    if selected {
                        hs.saw_match();
                        if rng.gen_bool(rate) {
                            hs.sampled(v);
                        }
                    }
                }
                if selected {
                    hosts.push(hs);
                }
            }
            let est = estimate_total(total_hosts, &hosts, 0.95);
            err_sum += (est.estimate - truth).abs() / truth;
            if (est.estimate - truth).abs() <= est.error_bound {
                covered += 1;
            }
        }
        let cov = covered as f64 / trials as f64 * 100.0;
        min_cov = min_cov.min(cov);
        let mean_err = err_sum / trials as f64 * 100.0;
        errs_by_rate.push(mean_err);
        t.row(vec![
            format!("{:.0}", rate * 100.0),
            format!("{cov:.1}"),
            format!("{mean_err:.2}"),
        ]);
    }
    let err_monotone = errs_by_rate.windows(2).all(|w| w[1] <= w[0] + 0.5);
    let pass = min_cov >= 85.0 && err_monotone;
    (
        t,
        pass,
        format!(
            "min coverage {min_cov:.1}% (nominal 95%), error shrinks with rate: {err_monotone}"
        ),
    )
}

/// Run E10.
pub fn run(quick: bool) -> Report {
    let (t1, pass1, note1) = e2e_part(quick);
    let (t2, pass2, note2) = coverage_part(quick);
    Report {
        id: "E10",
        title: "Sampling accuracy & Eq 1-3 error bounds (§3.2, reconstructed)",
        paper: "estimates carry multi-stage-sampling error bounds; error shrinks \
                with the sampling rate and bounds cover at ~the nominal 95%",
        body: format!(
            "end-to-end (live traffic, SUM of bid prices):\n{t1}\n\
             synthetic coverage (two-stage sampling, 95% bounds):\n{t2}"
        ),
        pass: pass1 && pass2,
        verdict: format!("{note1}; {note2}"),
    }
}
