//! E08 — request-latency impact of Scrub (abstract/§9; reconstructed —
//! the paper reports "a 1% increase in request latency", well within the
//! 20 ms SLO).
//!
//! Method: the identical workload runs twice — Scrub idle (0 queries) vs
//! Scrub busy (8 concurrent queries). Agent work inflates the servers'
//! service times through the cost model; the exchange frontends record
//! end-to-end bid latency, from which p50/p99 and the inflation follow.

use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use super::e07_cpu_overhead::{busy_config, QUERY_MIX};
use crate::{percentile, Report, Table};

fn run_once(n_queries: usize, quick: bool) -> (i64, i64) {
    let measure_secs: i64 = if quick { 20 } else { 60 };
    let mut p = adplatform::build_platform(busy_config(quick));
    for i in 0..n_queries {
        ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "{} window 10 s duration {} s",
                    QUERY_MIX[i % QUERY_MIX.len()],
                    measure_secs + 30
                ),
            )
            .expect("query accepted");
    }
    p.sim.run_until(SimTime::from_secs(10 + measure_secs));
    // keep only steady-state samples (after warm-up, while queries active)
    let lats: Vec<i64> = p
        .all_latencies()
        .into_iter()
        .filter(|(ts, _)| *ts >= 10_000)
        .map(|(_, l)| l)
        .collect();
    (percentile(&lats, 0.50), percentile(&lats, 0.99))
}

/// Run E08.
pub fn run(quick: bool) -> Report {
    let (p50_off, p99_off) = run_once(0, quick);
    let (p50_on, p99_on) = run_once(8, quick);

    let mut t = Table::new(&["scrub", "p50_us", "p99_us"]);
    t.row(vec![
        "idle (0 queries)".into(),
        p50_off.to_string(),
        p99_off.to_string(),
    ]);
    t.row(vec![
        "busy (8 queries)".into(),
        p50_on.to_string(),
        p99_on.to_string(),
    ]);

    let p50_inflation = (p50_on - p50_off) as f64 / p50_off.max(1) as f64 * 100.0;
    let p99_inflation = (p99_on - p99_off) as f64 / p99_off.max(1) as f64 * 100.0;
    let slo_ok = p99_on < 20_000;
    let pass = (0.0..5.0).contains(&p50_inflation) && slo_ok;
    Report {
        id: "E08",
        title: "Request-latency impact (abstract/§9, reconstructed)",
        paper: "about a 1% increase in request latency; the 20 ms SLO holds",
        body: t.to_string(),
        pass,
        verdict: format!(
            "p50 inflation {p50_inflation:.2}%, p99 inflation {p99_inflation:.2}%, \
             p99 with Scrub {p99_on}µs (SLO 20000µs: {})",
            if slo_ok { "met" } else { "VIOLATED" }
        ),
    }
}
