//! E02 — §8.2 validating a new ad exchange, Figures 11 & 12.
//!
//! Impressions per exchange per 10 s window, with host and event sampling
//! (statistical accuracy suffices). Exchange D activates mid-run; a healthy
//! integration shows a jump from zero to steady volume at activation.

#![allow(clippy::field_reassign_with_default)]

use std::collections::BTreeMap;

use adplatform::scenario;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Run E02.
pub fn run(quick: bool) -> Report {
    let mut cfg = scenario::new_exchange();
    let (live_s, total_min) = if quick {
        // compress the timeline in quick mode
        for ex in cfg.exchanges.iter_mut() {
            if ex.name == "D" {
                ex.live_from_ms = 90_000;
            }
        }
        (90, 3)
    } else {
        (550, 11)
    };
    let mut p = adplatform::build_platform(cfg);

    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "select impression.exchange_id, COUNT(*) from impression \
             @[Service in PresentationServers] \
             sample hosts 50% events 10% \
             group by impression.exchange_id \
             window 10 s duration {total_min} m"
            ),
        )
        .expect("query accepted");
    p.sim
        .run_until(SimTime::from_secs(total_min as i64 * 60 + 60));

    let rec = qid.record(&p.sim).expect("query accepted");
    let mut series: BTreeMap<i64, [f64; 4]> = BTreeMap::new();
    for row in &rec.rows {
        let ex = row.values[0].as_i64().unwrap() as usize;
        let count = row.values[1].as_f64().unwrap();
        if ex < 4 {
            series.entry(row.window_start_ms / 1000).or_insert([0.0; 4])[ex] = count;
        }
    }

    let mut t = Table::new(&["time_s", "A", "B", "C", "D"]);
    for (ts, c) in series.iter().step_by(3) {
        t.row(vec![
            ts.to_string(),
            format!("{:.0}", c[0]),
            format!("{:.0}", c[1]),
            format!("{:.0}", c[2]),
            format!("{:.0}", c[3]),
        ]);
    }

    let d_before: f64 = series
        .iter()
        .filter(|(t, _)| **t < live_s)
        .map(|(_, c)| c[3])
        .sum();
    let d_after: f64 = series
        .iter()
        .filter(|(t, _)| **t >= live_s + 20)
        .map(|(_, c)| c[3])
        .sum();
    let others_alive = series.values().map(|c| c[0] + c[1] + c[2]).sum::<f64>() > 0.0;
    let windows_after = series.keys().filter(|t| **t >= live_s + 20).count().max(1);
    let d_rate_after = d_after / windows_after as f64;

    let pass = d_before == 0.0 && d_after > 0.0 && others_alive;
    Report {
        id: "E02",
        title: "New-exchange validation (Figs 11-12)",
        paper: "exchange D serves zero impressions before activation, then jumps \
                to steady volume comparable to A-C (sampled statistics suffice)",
        body: t.to_string(),
        pass,
        verdict: format!(
            "D impressions: {d_before:.0} before t={live_s}s, {d_after:.0} after \
             (~{d_rate_after:.0}/window, scaled from 50% hosts x 10% events)"
        ),
    }
}
