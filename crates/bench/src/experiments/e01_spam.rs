//! E01 — §8.1 spam detection, Figures 9 & 10.
//!
//! The Figure 9 query counts bid requests per user in 10 s tumbling windows
//! on one BidServer. Figure 10's shape: humans form an exponentially
//! decaying requests-per-window distribution (about half the users: one
//! request per window); the two bots sit orders of magnitude above it.

use std::collections::BTreeMap;

use adplatform::scenario;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Run E01.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 8 };
    let cfg = scenario::spam();
    let bots = scenario::spam_bot_user_ids(&cfg);
    let mut p = adplatform::build_platform(cfg);

    let host = p.sim.metas()[p.bidservers[0].0 as usize].name.clone();
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) from bid \
             @[Service in BidServers and Server = '{host}'] \
             group by bid.user_id window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 30));

    let rec = qid.record(&p.sim).expect("query accepted");

    // Figure 10 data: distribution of counts per (user, window).
    let mut human_hist: BTreeMap<i64, u64> = BTreeMap::new();
    let mut bot_series: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    for row in &rec.rows {
        let user = row.values[0].as_i64().unwrap() as u64;
        let count = row.values[1].as_i64().unwrap();
        if bots.contains(&user) {
            bot_series
                .entry(row.window_start_ms / 1000)
                .or_default()
                .push(count);
        } else {
            *human_hist.entry(count).or_insert(0) += 1;
        }
    }

    let mut t = Table::new(&["requests_per_window", "human_user_windows"]);
    for (count, users) in human_hist.iter().take(15) {
        t.row(vec![count.to_string(), users.to_string()]);
    }
    let mut bt = Table::new(&["window_s", "bot_counts"]);
    for (w, counts) in bot_series.iter().take(20) {
        bt.row(vec![w.to_string(), format!("{counts:?}")]);
    }

    let total_hw: u64 = human_hist.values().sum();
    let singles = human_hist.get(&1).copied().unwrap_or(0);
    let max_human = human_hist.keys().max().copied().unwrap_or(0);
    let bot_peak = bot_series.values().flatten().max().copied().unwrap_or(0);
    let single_frac = singles as f64 / total_hw.max(1) as f64;
    // exponential decay check: hist(1) > hist(2) > hist(4)
    let decays =
        human_hist.get(&1) >= human_hist.get(&2) && human_hist.get(&2) >= human_hist.get(&4);

    let pass = bot_peak > 5 * max_human.max(1) && single_frac > 0.3 && decays;
    Report {
        id: "E01",
        title: "Spam detection (Figs 9-10)",
        paper: "about half of users issue one request per window; counts decay \
                exponentially; two bots sit far above the human tail",
        body: format!("{t}\nbot activity (first 20 windows with bot traffic):\n{bt}"),
        pass,
        verdict: format!(
            "{:.0}% of human user-windows have 1 request, max human {} vs bot peak {} \
             ({}x), decay {}",
            single_frac * 100.0,
            max_human,
            bot_peak,
            bot_peak / max_human.max(1),
            decays
        ),
    }
}
