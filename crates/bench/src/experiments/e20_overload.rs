//! E20 — overload protection (§2's host-impact contract, stress-tested).
//! Ramps far more concurrent queries onto the busy bidding workload than
//! the ≤2.5 % per-host CPU envelope can absorb, twice:
//!
//! - **unprotected**: admission off, budget enforcement off — every query
//!   runs and the measured per-host CPU (E07 method: agent work through
//!   the calibrated cost model over a steady-state interval) breaks the
//!   envelope;
//! - **protected**: cost-model admission control (`Evict` policy) caps
//!   the fleet of admitted queries, the agent's per-second budget tracker
//!   sheds tap work past the envelope (`budget_shed` provenance), and a
//!   tight `max_groups` bounds central group state (`groups_overflow`).
//!   The envelope holds, and every loss is still attributed: the ledgers
//!   reconcile exactly.
//!
//! Results land in `BENCH_overload.json` at the workspace root (CI
//! validates the schema): per-phase admitted/rejected/evicted counts,
//! measured host CPU, shed counts by provenance, and reconciliation.

use adplatform::PlatformMsg;
use scrub_agent::CostModel;
use scrub_core::config::AdmissionPolicy;
use scrub_server::{AdmissionVerdict, QueryHandle, QueryServerNode, QueryState, ScrubClient};
use scrub_simnet::SimDuration;

use super::e07_cpu_overhead::busy_config;
use crate::{Report, Table};

/// Query templates ramped in both phases (cycled until `n` submissions).
/// Deliberately heavier than E07's mix: two high-cardinality group-bys
/// (user ids; exclusion fan-out) so central group state is exercised too.
pub(crate) const RAMP_QUERIES: &[&str] = &[
    "select bid.user_id, COUNT(*) from bid group by bid.user_id @[Service in BidServers]",
    "select COUNT(*) from exclusion @[Service in AdServers]",
    "select impression.exchange_id, COUNT(*) from impression \
     group by impression.exchange_id @[Service in PresentationServers]",
    "select exclusion.reason, COUNT(*) from exclusion \
     group by exclusion.reason @[Service in AdServers]",
    "select AVG(bid.bid_price) from bid @[Service in BidServers]",
    "select COUNT(*) from auction where auction.winner_price > 0.5 @[Service in AdServers]",
];

/// Everything one phase of the ramp produced.
struct PhaseOut {
    max_cpu_pct: f64,
    admitted: usize,
    rejected: usize,
    evicted: usize,
    degraded_admits: usize,
    delivered: u64,
    sampled_out: u64,
    load_shed: u64,
    budget_shed: u64,
    batch_dropped: u64,
    groups_overflow: u64,
    ledgers: usize,
    ledgers_reconcile: bool,
}

/// Run one phase: build a fresh platform (same seed/workload), submit
/// `n_queries`, measure steady-state host CPU, run the spans out, and
/// collect admission decisions plus provenance-attributed losses.
fn run_phase(protected: bool, n_queries: usize, quick: bool) -> PhaseOut {
    let measure_secs: i64 = if quick { 15 } else { 40 };
    let duration_secs = measure_secs + 30;
    let mut cfg = busy_config(quick);
    // Concentrate the fleet: one DC (doubling per-host rates without
    // adding simulated events) and a 4x exclusion fan-out, so the ramp
    // actually breaks the envelope on the hottest host.
    cfg.dcs = vec!["DC1".into()];
    let extra: Vec<adplatform::LineItem> = (0..180u64)
        .map(|i| {
            let mut li = adplatform::LineItem::new(3000 + i, 300 + i / 6, 0.3);
            li.targeting.segment = Some((i % 8) as u32);
            li.targeting.countries = vec!["zz".into()]; // never passes: pure filter load
            li
        })
        .collect();
    cfg.line_items.extend(extra);
    if protected {
        cfg.scrub.enforce_host_budget = true;
        cfg.scrub.admission = AdmissionPolicy::Evict;
        // Price admissions at roughly the workload's per-host event rate;
        // the agent-side budget tracker catches whatever the estimate
        // misses, so the two layers jointly hold the envelope.
        cfg.scrub.admission_events_per_host_per_sec = 20_000.0;
        // Tight group bound so the keep-smallest-keys overflow policy is
        // exercised by the user-id group-by.
        cfg.scrub.max_groups = 64;
    }
    let mut p = adplatform::build_platform(cfg);
    let client = ScrubClient::new(&p.scrub);
    let mut handles: Vec<QueryHandle> = Vec::new();
    for i in 0..n_queries {
        let src = format!(
            "{} window 10 s duration {} s",
            RAMP_QUERIES[i % RAMP_QUERIES.len()],
            duration_secs
        );
        if let Ok(h) = client.submit(&mut p.sim, &src) {
            handles.push(h);
        }
    }

    // Steady-state host CPU with the surviving fleet live (E07 method).
    let t0 = p.sim.now();
    p.sim.run_until(t0 + SimDuration::from_secs(10));
    let before = p.agent_stats();
    p.sim
        .run_until(t0 + SimDuration::from_secs(10 + measure_secs));
    let after = p.agent_stats();
    let model = CostModel::default();
    let mut max_cpu_pct = 0.0f64;
    for ((_, b), (_, a)) in before.iter().zip(after.iter()) {
        let pct = model.cpu_fraction(&a.since(b), measure_secs as f64 * 1e9) * 100.0;
        max_cpu_pct = max_cpu_pct.max(pct);
    }

    // Run the spans out so summaries and retained ledgers exist.
    let deadline = t0 + SimDuration::from_secs(duration_secs + 120);
    while p.sim.now() < deadline
        && handles
            .iter()
            .any(|h| h.state(&p.sim) != Some(QueryState::Done))
    {
        let step_to = p.sim.now() + SimDuration::from_secs(5);
        p.sim.run_until(step_to);
    }

    // Admission decisions, in submission order.
    let server = p
        .sim
        .node_as::<QueryServerNode<PlatformMsg>>(p.scrub.server)
        .expect("server node");
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut evicted = 0usize;
    let mut degraded_admits = 0usize;
    for d in &server.admission_log {
        match &d.verdict {
            AdmissionVerdict::Admitted => admitted += 1,
            AdmissionVerdict::Degraded { .. } => {
                admitted += 1;
                degraded_admits += 1;
            }
            AdmissionVerdict::Evicted { victims } => {
                admitted += 1;
                evicted += victims.len();
            }
            AdmissionVerdict::Rejected => rejected += 1,
        }
    }

    // Provenance-attributed losses, summed across every query that
    // reached ScrubCentral (evicted-before-dispatch queries never do).
    let mut out = PhaseOut {
        max_cpu_pct,
        admitted,
        rejected,
        evicted,
        degraded_admits,
        delivered: 0,
        sampled_out: 0,
        load_shed: 0,
        budget_shed: 0,
        batch_dropped: 0,
        groups_overflow: 0,
        ledgers: 0,
        ledgers_reconcile: true,
    };
    for h in &handles {
        if let Some(ledger) = h.loss_ledger(&p.sim) {
            out.ledgers += 1;
            out.ledgers_reconcile &= ledger.reconciles();
            for losses in ledger.hosts.values() {
                out.delivered += losses.delivered;
                out.sampled_out += losses.sampled_out;
                out.load_shed += losses.load_shed;
                out.budget_shed += losses.budget_shed;
                out.batch_dropped += losses.batch_dropped;
            }
        }
        if let Some(s) = h.summary(&p.sim) {
            out.groups_overflow += s.groups_overflow;
        }
    }
    out
}

/// Run E20.
pub fn run(quick: bool) -> Report {
    let n_queries = 20usize;
    let unprotected = run_phase(false, n_queries, quick);
    let protected = run_phase(true, n_queries, quick);

    let mut t = Table::new(&[
        "phase",
        "max_host_cpu_pct",
        "admitted",
        "rejected",
        "evicted",
        "budget_shed",
        "load_shed",
        "groups_overflow",
        "ledgers_ok",
    ]);
    for (name, ph) in [("unprotected", &unprotected), ("protected", &protected)] {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", ph.max_cpu_pct),
            ph.admitted.to_string(),
            ph.rejected.to_string(),
            ph.evicted.to_string(),
            ph.budget_shed.to_string(),
            ph.load_shed.to_string(),
            ph.groups_overflow.to_string(),
            if ph.ledgers_reconcile {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    write_bench_json(quick, n_queries, &unprotected, &protected);

    let envelope = 2.5f64;
    let pass = unprotected.max_cpu_pct > envelope
        && protected.max_cpu_pct <= envelope
        && protected.admitted < n_queries + protected.evicted // someone paid
        && (protected.rejected + protected.evicted) > 0
        && protected.groups_overflow > 0
        && unprotected.ledgers_reconcile
        && protected.ledgers_reconcile;
    Report {
        id: "E20",
        title: "Overload protection: admission control + host budgets + bounded groups (§2)",
        paper: "the ≤2.5% per-host envelope is a contract: under a query ramp that breaks \
                it unprotected, admission control and budget shedding hold it — with every \
                dropped event still attributed in the loss ledger",
        body: t.to_string(),
        pass,
        verdict: format!(
            "unprotected {:.2}% host CPU (envelope {envelope}%), protected {:.2}% with \
             {} admitted / {} rejected / {} evicted of {n_queries} submitted; \
             budget_shed {}, groups_overflow {}, ledgers reconcile: {}",
            unprotected.max_cpu_pct,
            protected.max_cpu_pct,
            protected.admitted,
            protected.rejected,
            protected.evicted,
            protected.budget_shed,
            protected.groups_overflow,
            unprotected.ledgers_reconcile && protected.ledgers_reconcile,
        ),
    }
}

/// Persist the ramp as `BENCH_overload.json` at the workspace root (CI
/// validates this schema).
fn write_bench_json(quick: bool, submitted: usize, unprot: &PhaseOut, prot: &PhaseOut) {
    let phase_json = |name: &str, enforce: bool, admission: &str, ph: &PhaseOut| {
        format!(
            "    {{\n      \"name\": {name:?},\n      \"enforce_host_budget\": {enforce},\n      \
             \"admission\": {admission:?},\n      \"max_host_cpu_pct\": {:.3},\n      \
             \"admitted\": {},\n      \"rejected\": {},\n      \"evicted\": {},\n      \
             \"degraded_admits\": {},\n      \"delivered\": {},\n      \
             \"shed\": {{ \"sampled_out\": {}, \"load_shed\": {}, \"budget_shed\": {}, \
             \"batch_dropped\": {} }},\n      \"groups_overflow\": {},\n      \
             \"ledgers\": {},\n      \"ledgers_reconcile\": {}\n    }}",
            ph.max_cpu_pct,
            ph.admitted,
            ph.rejected,
            ph.evicted,
            ph.degraded_admits,
            ph.delivered,
            ph.sampled_out,
            ph.load_shed,
            ph.budget_shed,
            ph.batch_dropped,
            ph.groups_overflow,
            ph.ledgers,
            ph.ledgers_reconcile,
        )
    };
    let doc = format!(
        "{{\n  \"bench\": \"overload\",\n  \"experiment\": \"E20\",\n  \
         \"workload\": \"query ramp on the busy bidding workload, unprotected vs protected\",\n  \
         \"quick\": {quick},\n  \"envelope_pct\": 2.5,\n  \"submitted\": {submitted},\n  \
         \"phases\": [\n{},\n{}\n  ]\n}}\n",
        phase_json("unprotected", false, "Off", unprot),
        phase_json("protected", true, "Evict", prot),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("E20: could not write {path}: {e}");
    }
}
