//! E07 — host CPU overhead vs concurrent query load (abstract/§9;
//! reconstructed — the paper reports "a maximum CPU overhead of up to 2.5%
//! on application hosts").
//!
//! Method: the same bidding workload runs under 0..32 concurrent queries
//! (a representative mix over bid/exclusion/auction/impression events).
//! Each host's agent work is converted to CPU time through the calibrated
//! cost model; overhead is agent CPU time over wall (virtual) time. Only
//! the *per-event host work* differs across points, exactly like the
//! paper's setup.

#![allow(clippy::field_reassign_with_default)]

use adplatform::PlatformConfig;
use scrub_agent::CostModel;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// The query mix cycled over when installing N concurrent queries.
pub const QUERY_MIX: [&str; 8] = [
    "select COUNT(*) from exclusion group by exclusion.reason @[Service in AdServers]",
    "select bid.user_id, COUNT(*) from bid group by bid.user_id @[Service in BidServers]",
    "select COUNT(*) from impression group by impression.exchange_id \
     @[Service in PresentationServers]",
    "select AVG(bid.bid_price) from bid where bid.exchange_id = 1 @[Service in BidServers]",
    "select COUNT(*) from exclusion where exclusion.reason = 'targeting_country' \
     @[Service in AdServers]",
    "select COUNT_DISTINCT(bid.user_id) from bid @[Service in BidServers]",
    "select COUNT(*) from auction where auction.winner_price > 0.8 @[Service in AdServers]",
    "select impression.line_item_id, COUNT(*) from impression \
     group by impression.line_item_id @[Service in PresentationServers]",
];

/// Workload used by E07/E08: a busy deployment (few hosts, high rate) so
/// per-host event rates resemble production.
pub fn busy_config(quick: bool) -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.seed = 87;
    cfg.page_views_per_sec = if quick { 150.0 } else { 400.0 };
    cfg.bidservers_per_dc = 1;
    cfg.adservers_per_dc = 1;
    cfg.presservers_per_dc = 1;
    cfg.n_users = 2_000;
    // production-like campaign breadth: each request taps ~100 exclusion
    // sites, so per-host event rates reach tens of thousands per second
    let extra: Vec<adplatform::LineItem> = (0..60u64)
        .map(|i| {
            let mut li = adplatform::LineItem::new(2000 + i, 200 + i / 6, 0.3);
            li.targeting.segment = Some((i % 8) as u32);
            li.targeting.countries = vec!["zz".into()]; // never passes: pure filter load
            li
        })
        .collect();
    cfg.line_items.extend(extra);
    cfg
}

/// Measure per-host agent CPU fraction under `n` concurrent queries.
pub fn measure(n: usize, quick: bool) -> (f64, f64) {
    let measure_secs: i64 = if quick { 15 } else { 40 };
    let mut p = adplatform::build_platform(busy_config(quick));
    for i in 0..n {
        ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "{} window 10 s duration {} s",
                    QUERY_MIX[i % QUERY_MIX.len()],
                    measure_secs + 30
                ),
            )
            .expect("query accepted");
    }
    // warm up, then measure a steady-state interval
    p.sim.run_until(SimTime::from_secs(10));
    let before = p.agent_stats();
    p.sim.run_until(SimTime::from_secs(10 + measure_secs));
    let after = p.agent_stats();

    let model = CostModel::default();
    let interval_ns = measure_secs as f64 * 1e9;
    let mut max_pct = 0.0f64;
    let mut sum_pct = 0.0f64;
    for ((_, b), (_, a)) in before.iter().zip(after.iter()) {
        let delta = a.since(b);
        let pct = model.cpu_fraction(&delta, interval_ns) * 100.0;
        max_pct = max_pct.max(pct);
        sum_pct += pct;
    }
    (max_pct, sum_pct / before.len().max(1) as f64)
}

/// Run E07.
pub fn run(quick: bool) -> Report {
    let query_counts: &[usize] = if quick {
        &[0, 1, 4, 8, 16]
    } else {
        &[0, 1, 2, 4, 8, 16, 32]
    };
    let mut t = Table::new(&[
        "concurrent_queries",
        "max_host_cpu_pct",
        "mean_host_cpu_pct",
    ]);
    let mut series = Vec::new();
    for &n in query_counts {
        let (max_pct, mean_pct) = measure(n, quick);
        series.push((n, max_pct));
        t.row(vec![
            n.to_string(),
            format!("{max_pct:.3}"),
            format!("{mean_pct:.3}"),
        ]);
    }

    let idle = series[0].1;
    let at8 = series
        .iter()
        .find(|(n, _)| *n == 8)
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    let peak = series.last().map(|(_, v)| *v).unwrap_or(0.0);
    let grows = series.windows(2).all(|w| w[1].1 >= w[0].1 * 0.8);
    let pass = idle < 0.1 && at8 <= 2.5 && peak < 6.0 && grows && peak > idle;
    Report {
        id: "E07",
        title: "Host CPU overhead vs query load (abstract/§9, reconstructed)",
        paper: "maximum CPU overhead of up to 2.5% on application hosts under \
                realistic query load; near zero when idle",
        body: t.to_string(),
        pass,
        verdict: format!(
            "idle {idle:.3}%, {at8:.2}% at 8 queries, {peak:.2}% at max load \
             (paper max: 2.5%)"
        ),
    }
}
