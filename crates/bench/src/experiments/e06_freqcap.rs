//! E06 — §8.6 incorrectly set field (frequency-cap violations).
//!
//! The capped line item serves each user at most once per day — except the
//! users whose frequency counts the (planted) ProfileStore bug never
//! updates. Grouping impressions by user over a 1-day window isolates
//! exactly those users.

use adplatform::scenario;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Run E06.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 4 } else { 10 };
    let li = scenario::CAPPED_LINE_ITEM;
    let mut p = adplatform::build_platform(scenario::freq_cap());

    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select impression.user_id, COUNT(*) from impression \
             where impression.line_item_id = {li} \
             @[Service in PresentationServers] \
             group by impression.user_id window 1 d duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim
        .run_until(SimTime::from_secs(minutes as i64 * 60 + 60));

    let rec = qid.record(&p.sim).expect("query accepted");
    const GROSS: i64 = 5; // far above the cap: not explainable by lag
    let mut gross: Vec<(u64, i64)> = Vec::new();
    let (mut ok, mut lagged) = (0u64, 0u64);
    for row in &rec.rows {
        let user = row.values[0].as_i64().unwrap() as u64;
        let count = row.values[1].as_i64().unwrap();
        if count > GROSS {
            gross.push((user, count));
        } else if count > 1 {
            lagged += 1;
        } else {
            ok += 1;
        }
    }
    gross.sort_by_key(|(_, c)| -c);

    let mut t = Table::new(&["user_id", "impressions_per_day", "user_id_mod_10"]);
    for (u, c) in gross.iter().take(12) {
        t.row(vec![
            u.to_string(),
            c.to_string(),
            (u % scenario::CORRUPT_USER_MOD).to_string(),
        ]);
    }

    let all_corrupt = gross
        .iter()
        .all(|(u, _)| u % scenario::CORRUPT_USER_MOD == 0);
    let pass = !gross.is_empty() && all_corrupt && ok > 0;
    Report {
        id: "E06",
        title: "Incorrectly set frequency field (§8.6)",
        paper: "some users receive the capped ad far above the 1/day cap; the \
                violators share the trait that identifies the corrupt input data",
        body: t.to_string(),
        pass,
        verdict: format!(
            "{} users within cap, {lagged} slightly over (replication lag), \
             {} gross violators — all with user_id % {} == 0: {all_corrupt}",
            ok,
            gross.len(),
            scenario::CORRUPT_USER_MOD
        ),
    }
}
