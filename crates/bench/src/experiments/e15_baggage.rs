//! E15 — Scrub vs baggage propagation (§8.4's qualitative contrast,
//! quantified).
//!
//! §8.4: "if baggage propagation were used, the baggage would have to
//! include all these exclusions and pass them from the AdServers to the
//! BidServers. In contrast, Scrub queries the needed data on demand."
//!
//! Pivot-Tracing-style baggage attaches per-request context to every
//! request on the *critical path*, whether or not anyone is asking a
//! question. This experiment runs the exclusion workload and compares:
//!
//! * **baggage**: exclusion records ride inside every AdServer→BidServer
//!   response, inflating critical-path bytes and response serialization
//!   for *all* requests, *all* the time;
//! * **Scrub**: exclusions flow out-of-band, only while a query is active,
//!   only for matching/selected events.

#![allow(clippy::field_reassign_with_default)]

use adplatform::scenario;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::util::full_event_sizes;
use crate::{sum_stats, Report, Table};

/// Run E15.
pub fn run(quick: bool) -> Report {
    let minutes: i64 = if quick { 2 } else { 5 };
    let cfg = scenario::exclusions();
    let n_line_items = cfg.line_items.len();
    let mut p = adplatform::build_platform(cfg);

    // The §8.4 investigation: one line item's exclusions, one exchange.
    let li = scenario::EXCLUSION_LINE_ITEM;
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select exclusion.reason, COUNT(*) from bid, exclusion \
             where exclusion.line_item_id = {li} and bid.exchange_id = 0 \
             @[Service in BidServers or Service in AdServers] \
             group by exclusion.reason window 1 m duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));

    let rec = qid.record(&p.sim).expect("accepted");
    assert!(!rec.rows.is_empty(), "the investigation found nothing");

    // ---- Scrub side: out-of-band bytes, only while the query ran ----
    let stats = sum_stats(&p.agent_stats());
    let scrub_bytes = stats.bytes_shipped;

    // ---- baggage side: every request carries its exclusion list on the
    //      critical path, investigation or not ----
    let production = p.event_production();
    let sizes = full_event_sizes(n_line_items / 2);
    let requests = production.auctions; // one AdServer round per bid request
    let baggage_bytes = production.exclusions * sizes.exclusion as u64;
    let baggage_per_request = baggage_bytes.checked_div(requests).unwrap_or(0);
    // extra serialization on the critical path at ~0.3 ns/byte (same
    // constant as the agent cost model's ship cost)
    let critical_path_ns_per_req = baggage_per_request as f64 * 0.3;

    let mut t = Table::new(&["metric", "scrub (on demand)", "baggage (always on)"]);
    t.row(vec![
        "bytes moved for the investigation".into(),
        scrub_bytes.to_string(),
        baggage_bytes.to_string(),
    ]);
    t.row(vec![
        "bytes on the request critical path".into(),
        "0".into(),
        format!("{baggage_per_request}/request"),
    ]);
    t.row(vec![
        "critical-path serialization cost".into(),
        "0".into(),
        format!("{critical_path_ns_per_req:.0} ns/request"),
    ]);
    t.row(vec![
        "cost when nobody is troubleshooting".into(),
        "one atomic load per event".into(),
        "unchanged (always on)".into(),
    ]);

    let ratio = baggage_bytes as f64 / scrub_bytes.max(1) as f64;
    let pass = ratio > 2.0 && baggage_per_request > 500;
    Report {
        id: "E15",
        title: "Scrub vs baggage propagation (§8.4, quantified)",
        paper: "carrying all exclusions as request baggage from AdServers to \
                BidServers would be prohibitively expensive; Scrub queries the \
                needed data on demand",
        body: t.to_string(),
        pass,
        verdict: format!(
            "baggage would move {ratio:.0}x more bytes than Scrub's on-demand \
             query and add ~{baggage_per_request} bytes to EVERY request's \
             critical path"
        ),
    }
}
