//! E18 — lifecycle tracing and loss provenance under chaos (observability;
//! no paper figure).
//!
//! Reruns E16's chaos scenario (5% loss each way, a DC1/DC2 partition
//! mid-query, one BidServer crashed for good) with lifecycle tracing
//! enabled at 10%, and checks that the new provenance layer *explains*
//! the degradation rather than merely reporting it:
//!
//! * at least one assembled trace shows the retransmit hop — the lost
//!   first transmission is visible as `Send` followed by `Retransmit`
//!   on the same request's timeline;
//! * the loss ledger attributes events to `batch_dropped` (shipped but
//!   never ingested — the crashed host's unacked tail and any batch the
//!   fault plane ate past the retry horizon) and flags the crashed host
//!   dead, while still reconciling exactly against the tap counters
//!   (`tapped == delivered + sampled_out + load_shed + batch_dropped`);
//! * the fault-free twin run's ledger is all-zero: every tapped event
//!   reached a result, and no trace carries a retransmit hop.
//!
//! The chaos run's full telemetry surface is also rendered to
//! `BENCH_telemetry.prom` at the workspace root — the scrapeable,
//! byte-stable export checked by `tests/golden.rs`, including exemplar
//! comment lines linking hot metrics to trace request ids.

use adplatform::{scenario, PlatformConfig, PlatformMsg};
use scrub_obs::{LossLedger, SpanKind, TraceStore};
use scrub_server::{CentralNode, ScrubClient};
use scrub_simnet::SimTime;

use crate::{Report, Table};

struct RunOutcome {
    /// Assembled per-request trace trees for the spam query.
    traces: TraceStore,
    /// Traced requests whose timeline contains a `Retransmit` hop.
    retransmit_traces: usize,
    /// Traced requests whose timeline reaches a `WindowClose` hop.
    closed_traces: usize,
    /// The spam query's loss ledger.
    ledger: LossLedger,
    /// Rendered telemetry surface at end of run.
    telemetry: String,
}

fn run_once(mut cfg: PlatformConfig, minutes: i64) -> RunOutcome {
    // Trace one request in ten: plenty of lifecycles cross the partition
    // window, and the deterministic sampler keeps both runs comparable.
    cfg.scrub.trace_sample_rate = 0.1;
    let mut p = adplatform::build_platform(cfg);

    let q = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
                 group by bid.user_id window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));

    let traces = q.traces(&p.sim).expect("trace store for the query");
    let has_kind = |rid: u64, kind: SpanKind| {
        traces
            .trace(rid)
            .is_some_and(|spans| spans.iter().any(|s| s.kind == kind))
    };
    let rids: Vec<u64> = traces.request_ids().collect();
    let retransmit_traces = rids
        .iter()
        .filter(|&&rid| has_kind(rid, SpanKind::Retransmit))
        .count();
    let closed_traces = rids
        .iter()
        .filter(|&&rid| has_kind(rid, SpanKind::WindowClose))
        .count();
    let ledger = q.loss_ledger(&p.sim).expect("ledger for the query");
    let telemetry = {
        let node = p
            .sim
            .node_as::<CentralNode<PlatformMsg>>(p.scrub.central)
            .expect("central node");
        scrub_obs::render_text_with_exemplars(&node.metrics(p.sim.now().as_ms()), node.telemetry())
    };
    RunOutcome {
        traces,
        retransmit_traces,
        closed_traces,
        ledger,
        telemetry,
    }
}

/// Run E18.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 5 };
    let chaos_cfg = scenario::spam_under_chaos();
    let mut clean_cfg = scenario::spam_under_chaos();
    clean_cfg.faults = None;

    let chaos = run_once(chaos_cfg, minutes);
    let clean = run_once(clean_cfg, minutes);
    write_telemetry_artifact(&chaos.telemetry);

    let sum = |l: &LossLedger, f: fn(&scrub_obs::HostLosses) -> u64| l.total(f);
    let mut t = Table::new(&["metric", "chaos", "clean"]);
    t.row(vec![
        "traced requests".into(),
        chaos.traces.len().to_string(),
        clean.traces.len().to_string(),
    ]);
    t.row(vec![
        "spans assembled".into(),
        chaos.traces.span_count().to_string(),
        clean.traces.span_count().to_string(),
    ]);
    t.row(vec![
        "traces with retransmit hop".into(),
        chaos.retransmit_traces.to_string(),
        clean.retransmit_traces.to_string(),
    ]);
    t.row(vec![
        "traces reaching window close".into(),
        chaos.closed_traces.to_string(),
        clean.closed_traces.to_string(),
    ]);
    t.row(vec![
        "ledger: tapped".into(),
        sum(&chaos.ledger, |h| h.tapped).to_string(),
        sum(&clean.ledger, |h| h.tapped).to_string(),
    ]);
    t.row(vec![
        "ledger: delivered".into(),
        sum(&chaos.ledger, |h| h.delivered).to_string(),
        sum(&clean.ledger, |h| h.delivered).to_string(),
    ]);
    t.row(vec![
        "ledger: batch_dropped".into(),
        sum(&chaos.ledger, |h| h.batch_dropped).to_string(),
        sum(&clean.ledger, |h| h.batch_dropped).to_string(),
    ]);
    t.row(vec![
        "ledger: deduped retransmits".into(),
        sum(&chaos.ledger, |h| h.deduped_retransmit).to_string(),
        sum(&clean.ledger, |h| h.deduped_retransmit).to_string(),
    ]);
    let dead = |o: &RunOutcome| {
        o.ledger
            .hosts
            .iter()
            .filter(|(_, h)| h.host_dead)
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
            .join("/")
    };
    t.row(vec![
        "ledger: hosts flagged dead".into(),
        dead(&chaos),
        dead(&clean),
    ]);
    t.row(vec![
        "telemetry surface (bytes)".into(),
        chaos.telemetry.len().to_string(),
        clean.telemetry.len().to_string(),
    ]);

    let crashed = chaos.ledger.hosts.get(scenario::CHAOS_CRASHED_HOST);
    // The retransmit hop is visible on real lifecycles, chaos run only.
    let retransmit_traced = chaos.retransmit_traces > 0 && clean.retransmit_traces == 0;
    // Traces run end to end: emission through window close.
    let traces_complete = chaos.closed_traces > 0 && clean.closed_traces > 0;
    // The ledger blames the injected faults: events lost in flight, and
    // the crashed host called out by name.
    let loss_attributed = sum(&chaos.ledger, |h| h.batch_dropped) > 0
        && crashed.is_some_and(|h| h.host_dead)
        && sum(&chaos.ledger, |h| h.deduped_retransmit) > 0;
    // Both ledgers reconcile exactly against the tap counters ...
    let books_balance = chaos.ledger.reconciles() && clean.ledger.reconciles();
    // ... and the fault-free twin has nothing to explain.
    let clean_is_clean = clean.ledger.is_all_zero();
    // The artifact is a real Prometheus-style surface, not an empty shell.
    let telemetry_rendered = chaos
        .telemetry
        .contains("# TYPE scrub_central_events_ingested counter")
        && chaos.telemetry.contains("_bucket{le=\"+Inf\"}");

    let pass = retransmit_traced
        && traces_complete
        && loss_attributed
        && books_balance
        && clean_is_clean
        && telemetry_rendered;
    Report {
        id: "E18",
        title: "Lifecycle tracing + loss provenance under chaos (observability)",
        paper: "an online troubleshooter must explain its own losses: sampled \
                per-request traces show each hop (including retransmissions), \
                and a per-host loss ledger accounts for every tapped event that \
                missed a result, reconciling exactly with the tap counters; a \
                fault-free twin shows an all-zero ledger",
        body: t.to_string(),
        pass,
        verdict: format!(
            "{} traced requests, {} with a retransmit hop (clean {}); \
             batch_dropped {} (clean {}), crashed host flagged {}, \
             ledgers reconcile {}, clean all-zero {}",
            chaos.traces.len(),
            chaos.retransmit_traces,
            clean.retransmit_traces,
            sum(&chaos.ledger, |h| h.batch_dropped),
            sum(&clean.ledger, |h| h.batch_dropped),
            crashed.is_some_and(|h| h.host_dead),
            books_balance,
            clean_is_clean,
        ),
    }
}

/// Persist the chaos run's rendered telemetry surface as
/// `BENCH_telemetry.prom` at the workspace root — the scrapeable artifact
/// whose byte-stability `tests/golden.rs` guards.
fn write_telemetry_artifact(telemetry: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.prom");
    if let Err(e) = std::fs::write(path, telemetry) {
        eprintln!("E18: could not write {path}: {e}");
    }
}
