//! E05 — §8.5 line-item cannibalization, Figures 18a/18b & 19.
//!
//! auction ⋈ impression on the request id, restricted to auctions λ
//! participated in, grouped by the winning (impression-serving) line item:
//! per winner, win count (18a) and average winning price (18b). λ never
//! appears as a winner, and every winner's average price exceeds λ's
//! advisory price.

use std::collections::BTreeMap;

use adplatform::scenario;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Run E05.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 8 };
    let lambda = scenario::LAMBDA_LINE_ITEM as i64;
    let cfg = scenario::cannibalization();
    let advisory = cfg
        .line_items
        .iter()
        .find(|l| l.id == scenario::LAMBDA_LINE_ITEM)
        .expect("scenario defines lambda")
        .advisory_price;
    let mut p = adplatform::build_platform(cfg);

    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select impression.line_item_id, COUNT(*), AVG(auction.winner_price) \
             from auction, impression \
             where contains(auction.line_item_ids, {lambda}) \
             @[Service in AdServers or Service in PresentationServers] \
             group by impression.line_item_id window 1 m duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim
        .run_until(SimTime::from_secs(minutes as i64 * 60 + 60));

    let rec = qid.record(&p.sim).expect("query accepted");
    let mut agg: BTreeMap<i64, (i64, f64, i64)> = BTreeMap::new();
    for row in &rec.rows {
        let li = row.values[0].as_i64().unwrap();
        let n = row.values[1].as_i64().unwrap();
        let price = row.values[2].as_f64().unwrap();
        let e = agg.entry(li).or_insert((0, 0.0, 0));
        e.0 += n;
        e.1 += price;
        e.2 += 1;
    }

    let mut t = Table::new(&["line_item", "wins(18a)", "avg_win_price(18b)"]);
    for (li, (wins, psum, nw)) in &agg {
        t.row(vec![
            li.to_string(),
            wins.to_string(),
            format!("{:.3}", psum / *nw as f64),
        ]);
    }

    let lambda_wins = agg.get(&lambda).map(|e| e.0).unwrap_or(0);
    let min_winner_avg = agg
        .values()
        .map(|(_, s, n)| s / *n as f64)
        .fold(f64::INFINITY, f64::min);
    let pass = !agg.is_empty() && lambda_wins == 0 && min_winner_avg > advisory;
    Report {
        id: "E05",
        title: "Line-item cannibalization (Figs 18-19)",
        paper: "λ wins no auction it participates in; every winner's average \
                winning price exceeds λ's advisory price",
        body: t.to_string(),
        pass,
        verdict: format!(
            "λ (li {lambda}, advisory {advisory:.2}) won {lambda_wins}; \
             lowest winner average price {min_winner_avg:.3}"
        ),
    }
}
