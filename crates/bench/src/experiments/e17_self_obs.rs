//! E17 — self-observability: ScrubQL over Scrub's own telemetry.
//!
//! Scrub troubleshoots the application by tapping its events; `scrub-obs`
//! closes the loop by tapping Scrub itself. ScrubCentral emits a
//! `scrub_batch` meta-event for every batch it receives (flagging
//! retransmissions and duplicates) and a `scrub_window` meta-event for
//! every window it closes (flagging degraded ones), through the *same*
//! agent tap every application host uses. This experiment reruns E16's
//! §8.1 spam hunt under chaos (loss + partition + a crashed host) and
//! checks that the degradation PR 1 engineered is visible two independent
//! ways — through the typed [`QueryProfile`] a troubleshooter reads off a
//! `QueryHandle`, and through ScrubQL meta-queries targeted at
//! `@[Service in ScrubCentral]`. A fault-free twin run must show zero
//! retransmitted bytes and zero degraded windows by both accounts.

use adplatform::scenario;
use adplatform::PlatformConfig;
use scrub_obs::QueryProfile;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::{Report, Table};

struct RunOutcome {
    /// Execution profile of the spam query (from ScrubCentral).
    profile: QueryProfile,
    /// Batches the meta-pipeline saw arrive retransmitted (ScrubQL count
    /// over `scrub_batch where retransmit = 1`).
    meta_retx_batches: i64,
    /// All batches the meta-pipeline saw (retransmit flag ignored).
    meta_batches: i64,
    /// Degraded window closes the meta-pipeline saw (ScrubQL count over
    /// `scrub_window where degraded = 1`).
    meta_degraded_windows: i64,
    /// All window closes the meta-pipeline saw.
    meta_windows: i64,
}

fn count_rows(rows: &[scrub_central::ResultRow]) -> i64 {
    rows.iter()
        .filter_map(|r| r.values.last().and_then(|v| v.as_i64()))
        .sum()
}

fn run_once(cfg: PlatformConfig, minutes: i64) -> RunOutcome {
    let mut p = adplatform::build_platform(cfg);
    let client = ScrubClient::new(&p.scrub);

    // The workload under observation: E16's bot hunt.
    let q_spam = client
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
                 group by bid.user_id window 10 s duration {minutes} m"
            ),
        )
        .expect("spam query accepted");

    // The meta-queries: the same ScrubQL, pointed at Scrub itself. Only an
    // explicit @[Service in ScrubCentral] reaches Scrub's own nodes —
    // @[all] never does.
    let q_retx = client
        .submit(
            &mut p.sim,
            &format!(
                "select COUNT(*) from scrub_batch where scrub_batch.retransmit = 1 \
                 @[Service in ScrubCentral] window 30 s duration {minutes} m"
            ),
        )
        .expect("retransmit meta-query accepted");
    let q_batches = client
        .submit(
            &mut p.sim,
            &format!(
                "select COUNT(*) from scrub_batch \
                 @[Service in ScrubCentral] window 30 s duration {minutes} m"
            ),
        )
        .expect("batch meta-query accepted");
    let q_degraded = client
        .submit(
            &mut p.sim,
            &format!(
                "select COUNT(*) from scrub_window where scrub_window.degraded = 1 \
                 @[Service in ScrubCentral] window 30 s duration {minutes} m"
            ),
        )
        .expect("degraded meta-query accepted");
    let q_windows = client
        .submit(
            &mut p.sim,
            &format!(
                "select COUNT(*) from scrub_window \
                 @[Service in ScrubCentral] window 30 s duration {minutes} m"
            ),
        )
        .expect("window meta-query accepted");

    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));

    let profile = q_spam.profile(&p.sim).expect("spam query profile");
    RunOutcome {
        profile,
        meta_retx_batches: count_rows(q_retx.results(&p.sim)),
        meta_batches: count_rows(q_batches.results(&p.sim)),
        meta_degraded_windows: count_rows(q_degraded.results(&p.sim)),
        meta_windows: count_rows(q_windows.results(&p.sim)),
    }
}

/// Run E17.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 5 };
    let chaos_cfg = scenario::spam_under_chaos();
    let mut clean_cfg = scenario::spam_under_chaos();
    clean_cfg.faults = None;

    let chaos = run_once(chaos_cfg, minutes);
    let clean = run_once(clean_cfg, minutes);

    let mut t = Table::new(&["metric", "chaos", "clean"]);
    let fmt = |o: &RunOutcome| {
        (
            o.profile.bytes_retransmitted,
            o.profile.bytes_first_sent,
            o.profile.windows_degraded,
            o.profile.windows_closed,
        )
    };
    let (c_retx, c_first, c_deg, c_closed) = fmt(&chaos);
    let (k_retx, k_first, k_deg, k_closed) = fmt(&clean);
    t.row(vec![
        "profile: bytes first-sent".into(),
        c_first.to_string(),
        k_first.to_string(),
    ]);
    t.row(vec![
        "profile: bytes retransmitted".into(),
        c_retx.to_string(),
        k_retx.to_string(),
    ]);
    t.row(vec![
        "profile: windows closed".into(),
        c_closed.to_string(),
        k_closed.to_string(),
    ]);
    t.row(vec![
        "profile: windows degraded".into(),
        c_deg.to_string(),
        k_deg.to_string(),
    ]);
    t.row(vec![
        "profile: duplicate batches".into(),
        chaos.profile.batches_duplicate.to_string(),
        clean.profile.batches_duplicate.to_string(),
    ]);
    t.row(vec![
        "meta-query: scrub_batch total".into(),
        chaos.meta_batches.to_string(),
        clean.meta_batches.to_string(),
    ]);
    t.row(vec![
        "meta-query: scrub_batch retransmit=1".into(),
        chaos.meta_retx_batches.to_string(),
        clean.meta_retx_batches.to_string(),
    ]);
    t.row(vec![
        "meta-query: scrub_window total".into(),
        chaos.meta_windows.to_string(),
        clean.meta_windows.to_string(),
    ]);
    t.row(vec![
        "meta-query: scrub_window degraded=1".into(),
        chaos.meta_degraded_windows.to_string(),
        clean.meta_degraded_windows.to_string(),
    ]);
    let p50 = |o: &RunOutcome| o.profile.ingest_latency_ms.p50().unwrap_or(0);
    t.row(vec![
        "profile: ingest latency p50 (ms)".into(),
        p50(&chaos).to_string(),
        p50(&clean).to_string(),
    ]);

    // The profile sees PR 1's degradation ...
    let profile_sees_chaos = c_retx > 0 && c_deg > 0 && chaos.profile.batches_duplicate > 0;
    // ... the meta-pipeline independently agrees ...
    let meta_sees_chaos = chaos.meta_retx_batches > 0 && chaos.meta_degraded_windows > 0;
    // ... the meta-pipeline is alive at all (sees ordinary traffic too) ...
    let meta_alive = chaos.meta_batches > chaos.meta_retx_batches
        && clean.meta_batches > 0
        && clean.meta_windows > 0;
    // ... and the fault-free twin is clean by both accounts.
    let clean_is_clean = k_retx == 0
        && k_deg == 0
        && clean.meta_retx_batches == 0
        && clean.meta_degraded_windows == 0;
    // Sanity: windows kept closing either way.
    let windows_flow = c_closed > 0 && k_closed > 0;

    let pass =
        profile_sees_chaos && meta_sees_chaos && meta_alive && clean_is_clean && windows_flow;
    Report {
        id: "E17",
        title: "Self-observability (scrub-obs dogfooding)",
        paper: "a troubleshooter for production systems must expose its own \
                behavior with the same machinery: per-query execution profiles \
                plus scrub_batch/scrub_window meta-events queryable in ScrubQL; \
                chaos-run degradation must be visible both ways, and a fault-free \
                twin must show none",
        body: t.to_string(),
        pass,
        verdict: format!(
            "profile retx bytes {c_retx} (clean {k_retx}), degraded windows {c_deg} \
             (clean {k_deg}); meta-query retx batches {} (clean {}), degraded \
             windows {} (clean {})",
            chaos.meta_retx_batches,
            clean.meta_retx_batches,
            chaos.meta_degraded_windows,
            clean.meta_degraded_windows,
        ),
    }
}
