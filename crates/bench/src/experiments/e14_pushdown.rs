//! E14 — ablation: host-side selection & projection (§4).
//!
//! The only query work Scrub leaves on the hosts exists to shrink what the
//! hosts must ship. This ablation runs a selective, narrow query and
//! compares actual shipped bytes against (a) shipping matched events in
//! full (no projection) and (b) shipping the whole event stream (no
//! selection either).

#![allow(clippy::field_reassign_with_default)]

use adplatform::PlatformConfig;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::util::full_event_sizes;
use crate::{sum_stats, Report, Table};

/// Run E14.
pub fn run(quick: bool) -> Report {
    let minutes: i64 = if quick { 2 } else { 4 };
    let mut cfg = PlatformConfig::default();
    cfg.seed = 814;
    cfg.page_views_per_sec = if quick { 80.0 } else { 150.0 };
    let mut p = adplatform::build_platform(cfg);

    // selective (1 of 4 exchanges) and narrow (1 of 7 fields) query
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "select bid.user_id, COUNT(*) from bid where bid.exchange_id = 1 \
             @[Service in BidServers] group by bid.user_id \
             window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));

    let stats = sum_stats(&p.agent_stats());
    let rec = qid.record(&p.sim).expect("accepted");
    let matched = rec.summary.as_ref().map(|s| s.total_matched).unwrap_or(0);
    let production = p.event_production();
    let sizes = full_event_sizes(20);

    let actual = stats.bytes_shipped;
    let no_projection = matched * sizes.bid as u64;
    let no_selection = production.bids * sizes.bid as u64;

    let mut t = Table::new(&["policy", "events_shipped", "bytes_shipped"]);
    t.row(vec![
        "Scrub (selection + projection)".into(),
        stats.events_shipped.to_string(),
        actual.to_string(),
    ]);
    t.row(vec![
        "no projection (full matched events)".into(),
        matched.to_string(),
        no_projection.to_string(),
    ]);
    t.row(vec![
        "no selection either (all bid events)".into(),
        production.bids.to_string(),
        no_selection.to_string(),
    ]);

    let proj_saving = no_projection as f64 / actual.max(1) as f64;
    let total_saving = no_selection as f64 / actual.max(1) as f64;
    let pass = proj_saving > 1.5 && total_saving > 4.0;
    Report {
        id: "E14",
        title: "Ablation: host-side selection/projection pushdown (§4)",
        paper: "selection and projection run on hosts solely because they cut the \
                data shipped to ScrubCentral",
        body: t.to_string(),
        pass,
        verdict: format!(
            "projection saves {proj_saving:.1}x; selection+projection together \
             save {total_saving:.1}x over shipping everything"
        ),
    }
}
