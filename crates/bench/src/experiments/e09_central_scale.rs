//! E09 — ScrubCentral ingest scalability (§9; reconstructed — the paper
//! runs ScrubCentral as a small dedicated cluster; here its parallelism is
//! partitioned execution).
//!
//! Method (real wall-clock measurement, not simulation): a grouped-count
//! query ingests a fixed stream of events; partitions run on real threads,
//! each with its own executor, merging per-window partial aggregates at
//! the end — feasible because every aggregate state is mergeable.

use std::collections::BTreeMap;
use std::time::Instant;

use scrub_agent::EventBatch;
use scrub_central::QueryExecutor;
use scrub_core::config::ScrubConfig;
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, CentralPlan, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

use crate::{Report, Table};

fn plan() -> CentralPlan {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let spec = parse_query(
        "select bid.user_id, COUNT(*), AVG(bid.price) from bid \
         group by bid.user_id window 10 s",
    )
    .unwrap();
    compile(&spec, &reg, &ScrubConfig::default(), QueryId(1))
        .unwrap()
        .central
}

fn make_events(n: usize) -> Vec<Event> {
    (0..n)
        .map(|i| {
            Event::new(
                EventTypeId(0),
                RequestId(i as u64),
                (i % 60_000) as i64,
                vec![
                    Value::Long((i % 5_000) as i64),
                    Value::Double((i % 100) as f64 * 0.01),
                ],
            )
        })
        .collect()
}

/// Ingest `events` through `parts` thread-parallel executors; returns
/// (events/sec, result row count).
fn throughput(events: &[Event], parts: usize) -> (f64, usize) {
    let n = events.len();
    // shard by request id, mimicking the partitioned router
    let mut shards: Vec<Vec<Event>> = (0..parts)
        .map(|_| Vec::with_capacity(n / parts + 1))
        .collect();
    for ev in events {
        shards[(ev.request_id.0 % parts as u64) as usize].push(ev.clone());
    }

    let start = Instant::now();
    let partials: Vec<Vec<scrub_central::WindowPartial>> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                s.spawn(move || {
                    let mut exec = QueryExecutor::new(plan(), 0);
                    let matched = shard.len() as u64;
                    exec.ingest(EventBatch {
                        seq: 0,
                        attempt: 0,
                        query_id: QueryId(1),
                        type_id: EventTypeId(0),
                        host: "h".into(),
                        events: shard,
                        matched,
                        sampled: matched,
                        shed: 0,
                    });
                    exec.take_closed_partials(i64::MAX / 4)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread"))
            .collect()
    });

    // merge per (window, key)
    let mut merged: BTreeMap<
        (i64, Vec<scrub_core::value::GroupKey>),
        scrub_central::executor::GroupState,
    > = BTreeMap::new();
    for partial_list in partials {
        for p in partial_list {
            for (key, state) in p.groups {
                match merged.entry((p.window_start_ms, key)) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(state);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let dst = e.get_mut();
                        for (a, b) in dst.aggs.iter_mut().zip(&state.aggs) {
                            a.merge(b);
                        }
                    }
                }
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (n as f64 / elapsed, merged.len())
}

/// Run E09.
pub fn run(quick: bool) -> Report {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = if quick { 400_000 } else { 2_000_000 };
    let events = make_events(n);
    let parts_list = [1usize, 2, 4, 8];

    let mut t = Table::new(&["partitions", "events_per_sec", "speedup", "result_groups"]);
    let mut base = 0.0;
    let mut results = Vec::new();
    let mut group_counts = Vec::new();
    for &parts in &parts_list {
        let (eps, groups) = throughput(&events, parts);
        if parts == 1 {
            base = eps;
        }
        results.push((parts, eps));
        group_counts.push(groups);
        t.row(vec![
            parts.to_string(),
            format!("{eps:.0}"),
            format!("{:.2}x", eps / base),
            groups.to_string(),
        ]);
    }

    let same_answers = group_counts.windows(2).all(|w| w[0] == w[1]);
    let speedup_at_4 = results
        .iter()
        .find(|(p, _)| *p == 4)
        .map(|(_, e)| e / base)
        .unwrap_or(0.0);
    // Speedup is bounded by the machine's parallelism; on a single-core
    // box the experiment still verifies that partitioning costs little and
    // that merged results are identical (the distributed-correctness part).
    let speedup_ok = if cores >= 4 {
        speedup_at_4 > 1.5
    } else if cores >= 2 {
        speedup_at_4 > 1.1
    } else {
        speedup_at_4 > 0.6 // partitioning overhead stays small
    };
    let pass = same_answers && speedup_ok && base > 100_000.0;
    Report {
        id: "E09",
        title: "ScrubCentral ingest scalability (§9, reconstructed)",
        paper: "a small centralized cluster suffices: throughput scales with \
                partitions (up to the machine's parallelism), and merged results \
                are identical",
        body: format!("{t}\navailable cores on this machine: {cores}\n"),
        pass,
        verdict: format!(
            "single-partition {base:.0} events/s, {speedup_at_4:.2}x at 4 partitions \
             on a {cores}-core machine, identical groups across partition counts: \
             {same_answers}"
        ),
    }
}
