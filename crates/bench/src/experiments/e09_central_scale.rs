//! E09 — ScrubCentral ingest scalability (§9; reconstructed — the paper
//! runs ScrubCentral as a small dedicated cluster; here its parallelism is
//! partitioned execution).
//!
//! Method (real wall-clock measurement, not simulation): a grouped-count
//! query ingests a fixed stream of pre-built batches through the
//! *production* [`PartitionedExecutor`] — the same single-pass router,
//! bounded channels and worker threads the central node runs — at
//! partitions 1, 2, 4 and 8. Rendered rows must be identical across
//! partition counts (the distributed-correctness half of the experiment);
//! throughput scales with the machine's parallelism (the perf half).
//! Results land in `BENCH_central_ingest.json` at the workspace root so
//! later changes have a baseline to compare against.

use std::time::Instant;

use scrub_agent::{BatchPayload, EventBatch};
use scrub_central::{ExecutorStats, PartitionedExecutor, ResultRow};
use scrub_core::config::{ScrubConfig, WireFormat};
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, CentralPlan, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

use crate::{Report, Table};

const BATCH_EVENTS: usize = 4_096;

/// The core-count signals the bench records alongside its numbers.
/// Perf figures are only comparable across runs on machines with the
/// same *effective* core count, and in containers the scheduler-visible
/// count (`available_parallelism`, which honors cpuset/affinity) can
/// differ from both the raw `/proc/cpuinfo` count and the cgroup CPU
/// quota — so all three are detected and persisted.
#[derive(Debug, Clone, Copy)]
pub struct CoreSignals {
    /// `std::thread::available_parallelism()` (affinity/cpuset-aware).
    pub available_parallelism: usize,
    /// Processors listed in `/proc/cpuinfo` (the raw machine, quota-blind).
    pub cpuinfo: Option<usize>,
    /// Cores granted by the cgroup CPU quota (v2 `cpu.max` or v1
    /// `cpu.cfs_quota_us`/`cpu.cfs_period_us`), rounded up; `None` when
    /// unlimited or not in a cgroup.
    pub cgroup_quota: Option<usize>,
}

impl CoreSignals {
    /// Detect every signal on this machine.
    pub fn detect() -> Self {
        CoreSignals {
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cpuinfo: cpuinfo_processors(),
            cgroup_quota: cgroup_quota_cores(),
        }
    }

    /// The effective core count perf numbers should be judged against:
    /// the scheduler-visible parallelism, further clamped by any cgroup
    /// CPU quota (a container can show 64 schedulable CPUs yet only be
    /// allowed 1 core of runtime).
    pub fn effective(&self) -> usize {
        let mut cores = self.available_parallelism;
        if let Some(q) = self.cgroup_quota {
            cores = cores.min(q);
        }
        cores.max(1)
    }
}

fn cpuinfo_processors() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let n = text.lines().filter(|l| l.starts_with("processor")).count();
    (n > 0).then_some(n)
}

/// Cores granted by the cgroup CPU controller, if this process runs
/// under a quota. Checks cgroup v2 (`/sys/fs/cgroup/cpu.max`: either
/// `max <period>` for unlimited or `<quota> <period>`), then cgroup v1
/// (`cpu.cfs_quota_us` of -1 for unlimited over `cpu.cfs_period_us`).
fn cgroup_quota_cores() -> Option<usize> {
    if let Ok(text) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
        let mut it = text.split_whitespace();
        let quota = it.next()?;
        if quota == "max" {
            return None;
        }
        let quota: f64 = quota.parse().ok()?;
        let period: f64 = it.next()?.parse().ok()?;
        if quota > 0.0 && period > 0.0 {
            return Some((quota / period).ceil() as usize);
        }
        return None;
    }
    let quota: f64 = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    if quota <= 0.0 {
        return None; // -1: unlimited
    }
    let period: f64 = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_period_us")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    (period > 0.0).then(|| (quota / period).ceil() as usize)
}

fn plan() -> CentralPlan {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let spec = parse_query(
        "select bid.user_id, COUNT(*), AVG(bid.price) from bid \
         group by bid.user_id window 10 s",
    )
    .unwrap();
    compile(&spec, &reg, &ScrubConfig::default(), QueryId(1))
        .unwrap()
        .central
}

/// Pre-build the ingest feed: `n` events chunked into batches the way an
/// agent would ship them (encoded in `format`), with cumulative
/// matched/sampled counters.
fn make_batches(n: usize, format: WireFormat) -> Vec<EventBatch> {
    let events: Vec<Event> = (0..n)
        .map(|i| {
            Event::new(
                EventTypeId(0),
                RequestId(i as u64),
                (i % 60_000) as i64,
                vec![
                    Value::Long((i % 5_000) as i64),
                    Value::Double((i % 100) as f64 * 0.01),
                ],
            )
        })
        .collect();
    let mut batches = Vec::with_capacity(n / BATCH_EVENTS + 1);
    let mut cumulative = 0u64;
    for (seq, chunk) in events.chunks(BATCH_EVENTS).enumerate() {
        cumulative += chunk.len() as u64;
        batches.push(EventBatch {
            seq: seq as u64,
            attempt: 0,
            query_id: QueryId(1),
            type_id: EventTypeId(0),
            host: "h".into(),
            payload: BatchPayload::from_events(chunk.to_vec(), format),
            matched: cumulative,
            sampled: cumulative,
            shed: 0,
            budget_shed: 0,
            seen: cumulative,
            bytes: 0,
            spans: vec![],
        });
    }
    batches
}

/// Ingest the batch feed through the production executor at `parts`
/// partitions; returns (events/sec, sorted rendered rows, the final
/// executor stats snapshot — backpressure stalls plus per-worker
/// busy/idle clocks).
fn throughput(batches: &[EventBatch], parts: usize) -> (f64, Vec<ResultRow>, ExecutorStats) {
    // Warm-up: run a slice of the feed through a throwaway executor with
    // the same partition count, so thread spawn, allocator growth and the
    // ingest code paths are hot before the timed section. (The timed
    // executor must be fresh — re-ingesting into the warm one would drop
    // everything as late after its advance.)
    {
        let take = (batches.len() / 4).max(1);
        let mut warm = PartitionedExecutor::new(plan(), 0, parts);
        for batch in batches.iter().take(take).cloned() {
            warm.ingest(batch);
        }
        let _ = warm.advance(i64::MAX / 4);
    }

    let n: usize = batches.iter().map(EventBatch::len).sum();
    let mut exec = PartitionedExecutor::new(plan(), 0, parts);
    let feed = batches.to_vec(); // clone outside the timed section

    let start = Instant::now();
    for batch in feed {
        exec.ingest(batch);
    }
    let mut rows = exec.advance(i64::MAX / 4);
    let elapsed = start.elapsed().as_secs_f64();

    let stats = exec.stats();
    rows.sort_by_key(|r| {
        (
            r.window_start_ms,
            r.values.iter().map(Value::group_key).collect::<Vec<_>>(),
        )
    });
    (n as f64 / elapsed, rows, stats)
}

/// Run E09.
pub fn run(quick: bool) -> Report {
    let signals = CoreSignals::detect();
    let cores = signals.effective();
    let n = if quick { 400_000 } else { 2_000_000 };
    let batches = make_batches(n, WireFormat::Columnar);
    let row_batches = make_batches(n, WireFormat::Row);
    // Wire footprint per event, per format (payload bytes only, headers
    // excluded): columnar is the actual encoded frame length, row the
    // v1 modeled footprint.
    let payload_bytes = |bs: &[EventBatch]| -> f64 {
        bs.iter().map(|b| b.payload.approx_bytes()).sum::<usize>() as f64 / n as f64
    };
    let col_bytes_per_event = payload_bytes(&batches);
    let row_bytes_per_event = payload_bytes(&row_batches);
    // Single-partition decode+fold throughput of the v1 row path, for the
    // columnar-speedup figure reported below.
    let (row_eps, row_rows, _) = throughput(&row_batches, 1);
    let parts_list = [1usize, 2, 4, 8];

    let mut t = Table::new(&[
        "partitions",
        "events_per_sec",
        "speedup",
        "result_rows",
        "backpressure",
        "worker_busy",
    ]);
    let mut base = 0.0;
    let mut results: Vec<(usize, f64, ExecutorStats)> = Vec::new();
    let mut reference_rows: Option<Vec<ResultRow>> = None;
    let mut same_answers = true;
    let mut warnings = String::new();
    for &parts in &parts_list {
        if parts > cores {
            warnings.push_str(&format!(
                "WARNING: {parts} partitions on {cores} effective core(s) — threads \
                 time-slice instead of running in parallel; expect no speedup at \
                 this point, only the threading overhead.\n"
            ));
        }
        let (eps, rows, stats) = throughput(&batches, parts);
        if parts == 1 {
            base = eps;
            // row-format and columnar-format answers must agree too
            if row_rows != rows {
                same_answers = false;
            }
            reference_rows = Some(rows.clone());
        } else if reference_rows.as_deref() != Some(&rows) {
            same_answers = false;
        }
        // Mean busy share across workers: near 1.0 means the fold is the
        // bottleneck, low values point at the router / hand-off.
        let busy_share = {
            let (busy, total) = stats.workers.iter().fold((0u64, 0u64), |(b, t), w| {
                (b + w.busy_ns, t + w.busy_ns + w.idle_ns)
            });
            (total > 0).then(|| busy as f64 / total as f64)
        };
        t.row(vec![
            parts.to_string(),
            format!("{eps:.0}"),
            format!("{:.2}x", eps / base),
            rows.len().to_string(),
            stats.backpressure_stalls.to_string(),
            busy_share.map_or("-".into(), |s| format!("{:.0}%", s * 100.0)),
        ]);
        results.push((parts, eps, stats));
    }

    let speedup_at_4 = results
        .iter()
        .find(|(p, _, _)| *p == 4)
        .map(|(_, e, _)| e / base)
        .unwrap_or(0.0);
    let col_vs_row = if row_eps > 0.0 { base / row_eps } else { 0.0 };
    write_bench_json(
        &signals,
        n,
        quick,
        base,
        &results,
        row_eps,
        row_bytes_per_event,
        col_bytes_per_event,
    );
    // Speedup is bounded by the machine's parallelism. On a single-core
    // box a channel-fed worker pool can only lose wall-clock (context
    // switches and the merge fan-in with no parallel work to win it back),
    // so the binding assertion there is the distributed-correctness half —
    // identical rows — plus a bound on how much the threading costs.
    let speedup_ok = if cores >= 4 {
        speedup_at_4 > 1.5
    } else if cores >= 2 {
        speedup_at_4 > 1.1
    } else {
        speedup_at_4 > 0.25 // threading overhead stays bounded
    };
    let pass = same_answers && speedup_ok && base > 100_000.0;
    Report {
        id: "E09",
        title: "ScrubCentral ingest scalability (§9, reconstructed)",
        paper: "a small centralized cluster suffices: throughput scales with \
                partitions (up to the machine's parallelism), and merged results \
                are identical",
        body: format!(
            "{t}\n{warnings}columnar vs row (1 partition): {col_vs_row:.2}x \
             ({base:.0} vs {row_eps:.0} events/s); wire bytes/event: \
             columnar {col_bytes_per_event:.1} vs row {row_bytes_per_event:.1}\n\
             effective cores: {cores} (available_parallelism {}, \
             /proc/cpuinfo {}, cgroup quota {})\n",
            signals.available_parallelism,
            signals.cpuinfo.map_or("n/a".into(), |n| n.to_string()),
            signals
                .cgroup_quota
                .map_or("unlimited".into(), |n| n.to_string()),
        ),
        pass,
        verdict: format!(
            "single-partition {base:.0} events/s ({col_vs_row:.2}x vs row format), \
             {speedup_at_4:.2}x at 4 partitions on a {cores}-core machine, identical \
             rows across partition counts and wire formats: {same_answers}"
        ),
    }
}

/// Persist the run as `BENCH_central_ingest.json` at the workspace root —
/// the repo's perf trajectory for central ingest. Results are only
/// comparable across runs on machines with the same *effective* core
/// count, so every detection signal is persisted alongside the numbers.
#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    signals: &CoreSignals,
    events: usize,
    quick: bool,
    base: f64,
    results: &[(usize, f64, ExecutorStats)],
    row_eps: f64,
    row_bytes_per_event: f64,
    col_bytes_per_event: f64,
) {
    let runs: Vec<String> = results
        .iter()
        .map(|(parts, eps, stats)| {
            let workers: Vec<String> = stats
                .workers
                .iter()
                .map(|w| {
                    format!(
                        "{{ \"partition\": {}, \"busy_ns\": {}, \"idle_ns\": {} }}",
                        w.partition, w.busy_ns, w.idle_ns
                    )
                })
                .collect();
            format!(
                "    {{ \"partitions\": {parts}, \"events_per_sec\": {:.0}, \
                 \"speedup_vs_1\": {:.3}, \"backpressure_stalls\": {}, \
                 \"workers\": [{}] }}",
                eps,
                if base > 0.0 { eps / base } else { 0.0 },
                stats.backpressure_stalls,
                workers.join(", ")
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"bench\": \"central_ingest\",\n  \"experiment\": \"E09\",\n  \
         \"workload\": \"grouped count+avg, 10 s windows, 5000 groups\",\n  \
         \"cores\": {},\n  \"core_signals\": {{ \"available_parallelism\": {}, \
         \"cpuinfo\": {}, \"cgroup_quota\": {} }},\n  \
         \"events\": {events},\n  \"quick\": {quick},\n  \
         \"wire_format\": \"columnar\",\n  \
         \"wire_bytes_per_event\": {{ \"row\": {row_bytes_per_event:.2}, \
         \"columnar\": {col_bytes_per_event:.2} }},\n  \
         \"row_format_events_per_sec\": {row_eps:.0},\n  \
         \"columnar_speedup_vs_row\": {:.3},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        signals.effective(),
        signals.available_parallelism,
        signals.cpuinfo.map_or("null".into(), |n| n.to_string()),
        signals
            .cgroup_quota
            .map_or("null".into(), |n| n.to_string()),
        if row_eps > 0.0 { base / row_eps } else { 0.0 },
        runs.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_central_ingest.json"
    );
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("E09: could not write {path}: {e}");
    }
}
