//! E12 — probabilistic aggregations (§3.2; reconstructed): accuracy of the
//! TOP-K SpaceSaving summary and the COUNT_DISTINCT HyperLogLog that back
//! ScrubQL's approximate aggregates.

use std::collections::HashMap;

use adplatform::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scrub_sketch::{HyperLogLog, SpaceSaving};

use crate::{Report, Table};

fn topk_part(quick: bool) -> (Table, bool, String) {
    let draws = if quick { 200_000 } else { 1_000_000 };
    let mut t = Table::new(&["k", "zipf_alpha", "recall", "count_rel_err_pct", "note"]);
    let mut min_recall = 1.0f64;
    // The final row is a stress case: a near-flat distribution where no
    // item exceeds the N/capacity guarantee threshold, so SpaceSaving's
    // top-k is not expected to be reliable (excluded from the verdict).
    for &(k, alpha) in &[
        (5usize, 1.2f64),
        (10, 1.2),
        (20, 1.2),
        (10, 1.05),
        (10, 0.7),
    ] {
        let zipf = Zipf::new(50_000, alpha);
        let mut rng = StdRng::seed_from_u64(9 + k as u64);
        let mut truth: HashMap<usize, u64> = HashMap::new();
        let mut ss = SpaceSaving::new(k * 8);
        for _ in 0..draws {
            let x = zipf.sample(&mut rng);
            *truth.entry(x).or_insert(0) += 1;
            ss.offer(x);
        }
        let mut true_top: Vec<(usize, u64)> = truth.iter().map(|(a, b)| (*a, *b)).collect();
        true_top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        true_top.truncate(k);
        let approx = ss.top_k(k);
        let approx_items: Vec<usize> = approx.iter().map(|c| c.item).collect();
        let hits = true_top
            .iter()
            .filter(|(item, _)| approx_items.contains(item))
            .count();
        let recall = hits as f64 / k as f64;
        let stress = alpha < 1.0;
        if !stress {
            min_recall = min_recall.min(recall);
        }
        // count error over the items both agree on
        let mut err_sum = 0.0;
        let mut err_n = 0;
        for c in &approx {
            if let Some(tc) = truth.get(&c.item) {
                err_sum += (c.count as f64 - *tc as f64).abs() / *tc as f64;
                err_n += 1;
            }
        }
        let err = if err_n > 0 {
            err_sum / err_n as f64 * 100.0
        } else {
            0.0
        };
        t.row(vec![
            k.to_string(),
            format!("{alpha}"),
            format!("{recall:.2}"),
            format!("{err:.2}"),
            if stress {
                "stress: below guarantee".into()
            } else {
                String::new()
            },
        ]);
    }
    let pass = min_recall >= 0.9;
    (
        t,
        pass,
        format!("min TOP-K recall {min_recall:.2} (guaranteed regimes)"),
    )
}

fn hll_part(quick: bool) -> (Table, bool, String) {
    let mut t = Table::new(&["true_cardinality", "estimate", "rel_err_pct"]);
    let mut max_err = 0.0f64;
    let cards: &[u64] = if quick {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    for &n in cards {
        let mut hll = HyperLogLog::default_precision();
        for i in 0..n {
            // duplicates interleaved: every value added twice
            hll.add_bytes(&i.to_le_bytes());
            hll.add_bytes(&i.to_le_bytes());
        }
        let est = hll.estimate();
        let err = (est - n as f64).abs() / n as f64 * 100.0;
        max_err = max_err.max(err);
        t.row(vec![
            n.to_string(),
            format!("{est:.0}"),
            format!("{err:.2}"),
        ]);
    }
    // standard error at p=12 is ~1.6%; 4 sigma ≈ 6.5%
    let pass = max_err < 6.5;
    (t, pass, format!("max COUNT_DISTINCT error {max_err:.2}%"))
}

/// Run E12.
pub fn run(quick: bool) -> Report {
    let (t1, p1, n1) = topk_part(quick);
    let (t2, p2, n2) = hll_part(quick);
    Report {
        id: "E12",
        title: "Probabilistic aggregates: TOP-K & COUNT_DISTINCT (§3.2)",
        paper: "space-saving TOP-K finds the heavy hitters; HyperLogLog estimates \
                cardinality within its ~1.6% standard error",
        body: format!("TOP-K (SpaceSaving, capacity 8k):\n{t1}\nCOUNT_DISTINCT (HLL p=12):\n{t2}"),
        pass: p1 && p2,
        verdict: format!("{n1}; {n2}"),
    }
}
