//! E13 — ablation: operator placement (§2/§4 — the paper's thesis).
//!
//! Why does Scrub restrict hosts to selection + projection and centralize
//! group-by/aggregation? Because host-side work must be *bounded and
//! predictable* under strict SLOs. Selection + projection is O(1) per
//! event with zero state. Host-side group-by carries per-query state whose
//! size is the group cardinality — unbounded, memory-hungry, and
//! increasingly cache-hostile as it grows. This ablation measures (real
//! wall clock) the per-event cost and resident state of both policies as
//! group cardinality rises.

use std::collections::HashMap;
use std::time::Instant;

use scrub_core::expr::{BinOp, Expr, FieldRef, ResolvedExpr, SlotBinder};
use scrub_core::plan::AggSpec;
use scrub_core::ql::ast::AggFn;
use scrub_core::value::{GroupKey, Value};

use crate::{Report, Table};

fn predicate() -> ResolvedExpr {
    let mut binder = SlotBinder::new();
    binder.push(FieldRef::bare("user_id"));
    binder.push(FieldRef::bare("exchange_id"));
    binder.push(FieldRef::bare("price"));
    Expr::Binary {
        op: BinOp::Ge,
        lhs: Box::new(Expr::Field(FieldRef::bare("exchange_id"))),
        rhs: Box::new(Expr::Literal(Value::Long(0))),
    }
    .resolve(&binder)
    .unwrap()
}

fn rows(cardinality: u64) -> Vec<Vec<Value>> {
    (0..8192u64)
        .map(|i| {
            vec![
                Value::Long((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % cardinality) as i64),
                Value::Long((i % 5) as i64),
                Value::Double((i % 50) as f64 * 0.02),
            ]
        })
        .collect()
}

/// Scrub policy: select + project, no state. Returns ns/event.
fn measure_select_project(iters: u64) -> f64 {
    let pred = predicate();
    let data = rows(1 << 20);
    let start = Instant::now();
    for i in 0..iters {
        let row = &data[(i % 8192) as usize];
        if pred.eval_bool(row) {
            std::hint::black_box(row[0].clone());
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Pushdown policy: select + host-side group-by + COUNT/AVG state.
/// Returns (ns/event, resident groups, approx state bytes).
fn measure_pushdown(iters: u64, cardinality: u64) -> (f64, usize, u64) {
    let pred = predicate();
    let data = rows(cardinality);
    let specs = [
        AggSpec {
            func: AggFn::Count,
            arg: None,
        },
        AggSpec {
            func: AggFn::Avg,
            arg: None,
        },
    ];
    let mut groups: HashMap<GroupKey, Vec<scrub_central::AggState>> = HashMap::new();
    let start = Instant::now();
    for i in 0..iters {
        // spread accesses across the whole key space, not just 8192 rows
        let key_val = (i.wrapping_mul(0x2545_F491_4F6C_DD1D)) % cardinality;
        let row = &data[(i % 8192) as usize];
        if pred.eval_bool(row) {
            let key = Value::Long(key_val as i64).group_key();
            let states = groups
                .entry(key)
                .or_insert_with(|| specs.iter().map(scrub_central::AggState::new).collect());
            states[0].update(None);
            states[1].update(Some(&row[2]));
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    // key (enum+i64) + 2 agg states + hashmap slot overhead
    let approx_bytes = groups.len() as u64 * 176;
    (ns, groups.len(), approx_bytes)
}

/// Run E13.
pub fn run(quick: bool) -> Report {
    let iters = if quick { 2_000_000 } else { 8_000_000 };
    let scrub_ns = measure_select_project(iters);

    let mut t = Table::new(&[
        "policy",
        "group_cardinality",
        "ns_per_event",
        "host_state_bytes",
    ]);
    t.row(vec![
        "Scrub (select+project)".into(),
        "-".into(),
        format!("{scrub_ns:.1}"),
        "0".into(),
    ]);

    let mut worst_ns = 0.0f64;
    let mut worst_bytes = 0u64;
    for card in [1u64 << 7, 1 << 14, 1 << 21] {
        let (ns, groups, bytes) = measure_pushdown(iters, card);
        worst_ns = worst_ns.max(ns);
        worst_bytes = worst_bytes.max(bytes);
        t.row(vec![
            "pushdown (host group-by)".into(),
            format!("{card} ({groups} groups)"),
            format!("{ns:.1}"),
            bytes.to_string(),
        ]);
    }

    let cpu_ratio = worst_ns / scrub_ns.max(1e-9);
    // per-query host state at high cardinality, times a realistic query load
    let state_mb_8q = worst_bytes as f64 * 8.0 / 1e6;
    let pass = cpu_ratio > 2.0 && worst_bytes > 50_000_000;
    Report {
        id: "E13",
        title: "Ablation: operator placement (§2/§4)",
        paper: "host work must be bounded: selection+projection is O(1)/event with \
                zero state, while host-side group-by carries unbounded per-query \
                state and degrades as cardinality grows — hence ScrubCentral",
        body: t.to_string(),
        pass,
        verdict: format!(
            "at 2M groups, host group-by costs {cpu_ratio:.1}x Scrub's per-event \
             work and {:.0} MB of host memory per query ({state_mb_8q:.0} MB under \
             8 queries) vs 0 for Scrub",
            worst_bytes as f64 / 1e6
        ),
    }
}
