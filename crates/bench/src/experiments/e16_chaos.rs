//! E16 — the spam query under chaos (robustness; no paper figure).
//!
//! Reruns §8.1's bot hunt while the network misbehaves: 5% message loss
//! each way between the BidServers and ScrubCentral, a full DC1/DC2
//! partition mid-query, and one BidServer crashed for good. The paper's
//! pitch is troubleshooting *production* systems; a troubleshooter that
//! falls over with the system under test is useless. The run must still
//! surface both planted bots, and — just as important — the summary must
//! *admit* the degradation: coverage below 100%, wider Eq 1–3 bounds than
//! a fault-free twin run, rows marked degraded, duplicates absorbed, and
//! windows closing on time instead of stalling on the dead host.

use std::collections::BTreeMap;

use adplatform::{scenario, PlatformConfig};
use scrub_central::QuerySummary;
use scrub_server::ScrubClient;
use scrub_simnet::{FaultStats, SimTime};

use crate::{sum_stats, Report, Table};
use scrub_agent::StatsSnapshot;

struct RunOutcome {
    /// Peak per-window request count per bot user id.
    bot_peaks: BTreeMap<u64, i64>,
    /// Largest per-window count any human user reached.
    max_human: i64,
    /// Summary of the grouped bot query.
    summary: QuerySummary,
    /// Eq-2 half-width of the sampled COUNT(*) companion query.
    count_bound: f64,
    /// Distinct windows the companion query emitted.
    windows_seen: usize,
    /// Fault-plane counters (all zero on the clean twin).
    faults: FaultStats,
    /// Summed per-host agent counters (retransmits, heartbeats, ...).
    agents: StatsSnapshot,
}

fn run_once(cfg: PlatformConfig, minutes: i64) -> RunOutcome {
    let bots = scenario::spam_bot_user_ids(&cfg);
    let mut p = adplatform::build_platform(cfg);

    let q_bots = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
             group by bid.user_id window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    let q_count = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "select COUNT(*) from bid @[Service in BidServers] \
             sample events 50% window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));

    let rec = q_bots.record(&p.sim).expect("bot query accepted");
    let mut bot_peaks: BTreeMap<u64, i64> = bots.iter().map(|b| (*b, 0)).collect();
    let mut max_human = 0i64;
    for row in &rec.rows {
        let user = row.values[0].as_i64().unwrap() as u64;
        let count = row.values[1].as_i64().unwrap();
        if let Some(peak) = bot_peaks.get_mut(&user) {
            *peak = (*peak).max(count);
        } else {
            max_human = max_human.max(count);
        }
    }
    let summary = rec.summary.clone().expect("bot query summary");

    let crec = q_count.record(&p.sim).expect("count query accepted");
    let count_bound = crec
        .summary
        .as_ref()
        .and_then(|s| s.estimates.first().copied().flatten())
        .map(|e| e.error_bound)
        .unwrap_or(f64::NAN);
    let windows_seen = crec
        .rows
        .iter()
        .map(|r| r.window_start_ms)
        .collect::<std::collections::BTreeSet<_>>()
        .len();

    RunOutcome {
        bot_peaks,
        max_human,
        summary,
        count_bound,
        windows_seen,
        faults: p.sim.fault_stats(),
        agents: sum_stats(&p.agent_stats()),
    }
}

/// Run E16.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 5 };
    let chaos_cfg = scenario::spam_under_chaos();
    let mut clean_cfg = scenario::spam_under_chaos();
    clean_cfg.faults = None;

    let chaos = run_once(chaos_cfg, minutes);
    let clean = run_once(clean_cfg, minutes);

    let mut t = Table::new(&["metric", "chaos", "clean"]);
    let peaks = |o: &RunOutcome| {
        o.bot_peaks
            .values()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("/")
    };
    t.row(vec!["bot peak counts".into(), peaks(&chaos), peaks(&clean)]);
    t.row(vec![
        "max human count".into(),
        chaos.max_human.to_string(),
        clean.max_human.to_string(),
    ]);
    t.row(vec![
        "coverage".into(),
        format!("{:.0}%", chaos.summary.coverage() * 100.0),
        format!("{:.0}%", clean.summary.coverage() * 100.0),
    ]);
    t.row(vec![
        "hosts live/targeted".into(),
        format!(
            "{}/{}",
            chaos.summary.hosts_live, chaos.summary.hosts_targeted
        ),
        format!(
            "{}/{}",
            clean.summary.hosts_live, clean.summary.hosts_targeted
        ),
    ]);
    t.row(vec![
        "COUNT(*) error bound".into(),
        format!("{:.0}", chaos.count_bound),
        format!("{:.0}", clean.count_bound),
    ]);
    t.row(vec![
        "degraded rows".into(),
        chaos.summary.degraded_rows.to_string(),
        clean.summary.degraded_rows.to_string(),
    ]);
    t.row(vec![
        "duplicate batches".into(),
        chaos.summary.duplicate_batches.to_string(),
        clean.summary.duplicate_batches.to_string(),
    ]);
    t.row(vec![
        "windows emitted".into(),
        chaos.windows_seen.to_string(),
        clean.windows_seen.to_string(),
    ]);
    t.row(vec![
        "messages dropped (fault plane)".into(),
        chaos.faults.total_dropped().to_string(),
        clean.faults.total_dropped().to_string(),
    ]);
    t.row(vec![
        "agent retransmits".into(),
        chaos.agents.retransmits.to_string(),
        clean.agents.retransmits.to_string(),
    ]);
    t.row(vec![
        "agent retransmitted bytes".into(),
        chaos.agents.bytes_retransmitted.to_string(),
        clean.agents.bytes_retransmitted.to_string(),
    ]);
    t.row(vec![
        "agent heartbeats sent".into(),
        chaos.agents.heartbeats_sent.to_string(),
        clean.agents.heartbeats_sent.to_string(),
    ]);

    // Both bots stand clear of the human tail despite the chaos.
    let bots_found = chaos
        .bot_peaks
        .values()
        .all(|p| *p > 5 * chaos.max_human.max(1));
    // The degradation is admitted, not hidden.
    let coverage_honest =
        chaos.summary.coverage() < 1.0 && (clean.summary.coverage() - 1.0).abs() < f64::EPSILON;
    let bounds_widened = chaos.count_bound.is_finite()
        && clean.count_bound.is_finite()
        && chaos.count_bound > clean.count_bound;
    let degradation_visible = chaos.summary.degraded_rows > 0 && clean.summary.degraded_rows == 0;
    let retries_absorbed = chaos.agents.retransmits > 0 && chaos.summary.duplicate_batches > 0;
    // Windows kept closing: the chaos run emitted (at least) as many
    // windows as the clean twin, none stalled behind the dead host.
    let no_stall = chaos.windows_seen >= clean.windows_seen && clean.windows_seen > 0;

    let pass = bots_found
        && coverage_honest
        && bounds_widened
        && degradation_visible
        && retries_absorbed
        && no_stall;
    Report {
        id: "E16",
        title: "Spam detection under chaos (robustness)",
        paper: "an online troubleshooter must survive the faults it is diagnosing: \
                the bots stay visible under loss/partition/crash, and the summary \
                reports the degradation (coverage < 100%, wider Eq 1-3 bounds) \
                instead of silently wrong answers",
        body: t.to_string(),
        pass,
        verdict: format!(
            "bots found {bots_found}, coverage {:.0}% (clean 100%), bound {:.0} vs {:.0}, \
             degraded rows {}, dup batches {}, windows {}/{}",
            chaos.summary.coverage() * 100.0,
            chaos.count_bound,
            clean.count_bound,
            chaos.summary.degraded_rows,
            chaos.summary.duplicate_batches,
            chaos.windows_seen,
            clean.windows_seen,
        ),
    }
}
