//! E04 — §8.4 line-item exclusion analysis, Figure 16.
//!
//! Joins `bid` (BidServers) with `exclusion` (AdServers) on the request id
//! — the cross-service equi-join — narrowed to one exchange, and counts
//! exclusions per reason for the suspect line item. The paper compares the
//! resulting distribution against a well-behaved line item's; we report
//! both.

use std::collections::BTreeMap;

use adplatform::scenario;

use scrub_server::{QueryHandle, ScrubClient};
use scrub_simnet::SimTime;

use crate::{Report, Table};

/// Run E04.
pub fn run(quick: bool) -> Report {
    let minutes = if quick { 3 } else { 6 };
    let suspect = scenario::EXCLUSION_LINE_ITEM;
    let healthy = 1001u64; // a permissive default line item
    let mut p = adplatform::build_platform(scenario::exclusions());

    let mut q = |li: u64| -> QueryHandle {
        ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "Select exclusion.reason, COUNT(*) from bid, exclusion \
                 where exclusion.line_item_id = {li} and bid.exchange_id = 0 \
                 @[Service in BidServers or Service in AdServers] \
                 group by exclusion.reason window 1 m duration {minutes} m"
                ),
            )
            .expect("query accepted")
    };
    let q_suspect = q(suspect);
    let q_healthy = q(healthy);

    p.sim
        .run_until(SimTime::from_secs(minutes as i64 * 60 + 60));

    let hist = |qid: QueryHandle| -> BTreeMap<String, i64> {
        let mut h = BTreeMap::new();
        if let Some(rec) = qid.record(&p.sim) {
            for row in &rec.rows {
                let reason = row.values[0].as_str().unwrap_or("?").to_string();
                *h.entry(reason).or_insert(0) += row.values[1].as_i64().unwrap_or(0);
            }
        }
        h
    };
    let hs = hist(q_suspect);
    let hh = hist(q_healthy);

    let mut reasons: Vec<&String> = hs.keys().chain(hh.keys()).collect();
    reasons.sort();
    reasons.dedup();
    let mut t = Table::new(&["reason", "suspect_li", "healthy_li"]);
    for r in reasons {
        t.row(vec![
            r.clone(),
            hs.get(r).copied().unwrap_or(0).to_string(),
            hh.get(r).copied().unwrap_or(0).to_string(),
        ]);
    }

    let suspect_total: i64 = hs.values().sum();
    let healthy_total: i64 = hh.values().sum();
    // the suspect (narrow targeting) must be excluded far more often and
    // for targeting reasons the healthy item never shows
    let suspect_targeting: i64 = hs
        .iter()
        .filter(|(r, _)| r.starts_with("targeting"))
        .map(|(_, c)| c)
        .sum();
    let pass = suspect_total > 10 * healthy_total.max(1) && suspect_targeting > 0;
    Report {
        id: "E04",
        title: "Line-item exclusion analysis (Fig 16)",
        paper: "the non-serving line item's exclusion distribution is dominated by \
                reasons a well-behaved line item rarely shows",
        body: t.to_string(),
        pass,
        verdict: format!(
            "suspect excluded {suspect_total} times (targeting: {suspect_targeting}) \
             vs healthy {healthy_total}"
        ),
    }
}
