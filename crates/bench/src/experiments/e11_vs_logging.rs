//! E11 — Scrub vs troubleshooting-by-logging (§8.1's comparison;
//! reconstructed as a table).
//!
//! The spam investigation runs under both regimes over the same traffic:
//!
//! * **Scrub**: the Figure 9 query; hosts ship only the selected/projected
//!   `bid.user_id` stream; answers arrive per window.
//! * **Logging**: every event of every type is logged in full and shipped
//!   to a central warehouse; a batch job answers the question afterwards.

use adplatform::scenario;
use scrub_baseline::LoggingCostModel;
use scrub_server::ScrubClient;
use scrub_simnet::SimTime;

use crate::util::{full_event_sizes, full_log_bytes};
use crate::{sum_stats, Report, Table};

/// Run E11.
pub fn run(quick: bool) -> Report {
    let minutes: i64 = if quick { 2 } else { 5 };
    let cfg = scenario::spam();
    let n_line_items = cfg.line_items.len();
    let mut p = adplatform::build_platform(cfg);

    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] \
             group by bid.user_id window 10 s duration {minutes} m"
            ),
        )
        .expect("query accepted");
    p.sim.run_until(SimTime::from_secs(minutes * 60 + 60));

    // ---- Scrub side ----
    let stats = sum_stats(&p.agent_stats());
    let scrub_bytes = stats.bytes_shipped;
    let rec = qid.record(&p.sim).expect("accepted");
    let scrub_first_answer_s = rec
        .first_rows_at_ms
        .map(|t| t as f64 / 1000.0)
        .unwrap_or(f64::NAN);

    // ---- Logging side ----
    let production = p.event_production();
    // average auction carries roughly the passing line items; assume half
    let sizes = full_event_sizes(n_line_items / 2);
    let log_bytes = full_log_bytes(&production, &sizes);
    let model = LoggingCostModel::default();
    let costs = model.costs(log_bytes);

    let mut t = Table::new(&["metric", "scrub", "logging"]);
    t.row(vec![
        "bytes shipped cross-DC".into(),
        format!("{scrub_bytes}"),
        format!("{log_bytes}"),
    ]);
    t.row(vec![
        "events shipped".into(),
        format!("{}", stats.events_shipped),
        format!("{}", production.total()),
    ]);
    t.row(vec![
        "time to first answer (s)".into(),
        format!("{scrub_first_answer_s:.1}"),
        format!("{:.1}", costs.time_to_answer_s + minutes as f64 * 60.0),
    ]);
    t.row(vec![
        "storage to retain 1 month (USD, this session alone)".into(),
        "~0".into(),
        format!("{:.4}", costs.storage_usd_month),
    ]);

    let byte_ratio = log_bytes as f64 / scrub_bytes.max(1) as f64;
    // Scrub answers while the problem is live (first window); the batch
    // pipeline cannot answer before the session ends + transfer + job.
    let time_ratio =
        (costs.time_to_answer_s + minutes as f64 * 60.0) / scrub_first_answer_s.max(0.1);
    let pass = byte_ratio > 50.0 && scrub_first_answer_s < 30.0 && time_ratio > 5.0;
    Report {
        id: "E11",
        title: "Scrub vs logging (§8.1 comparison, reconstructed)",
        paper: "logging all data and analysing offline is orders of magnitude more \
                expensive in bytes and delays resolution while losses accumulate",
        body: t.to_string(),
        pass,
        verdict: format!(
            "logging ships {byte_ratio:.0}x more bytes; Scrub's first answer at \
             {scrub_first_answer_s:.1}s vs {:.0}s ({time_ratio:.0}x later)",
            costs.time_to_answer_s + minutes as f64 * 60.0
        ),
    }
}
