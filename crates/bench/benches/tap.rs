//! Criterion microbenchmarks of the host tap — the numbers behind the
//! agent cost model (`scrub_agent::CostModel`) and the paper's claim that
//! an idle Scrub is nearly free on the hosts.

#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use scrub_agent::ScrubAgent;
use scrub_core::config::ScrubConfig;
use scrub_core::event::RequestId;
use scrub_core::plan::{compile, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("exchange_id", FieldType::Long),
                FieldDef::new("bid_price", FieldType::Double),
                FieldDef::new("country", FieldType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg
}

fn agent_with(queries: &[&str]) -> ScrubAgent {
    agent_with_trace_rate(queries, 0.0)
}

fn agent_with_trace_rate(queries: &[&str], trace_rate: f64) -> ScrubAgent {
    let reg = registry();
    let mut config = ScrubConfig::default();
    config.agent_batch_events = usize::MAX; // avoid flush noise in the bench
    config.trace_sample_rate = trace_rate;
    let agent = ScrubAgent::new("bench-host", config);
    for (i, q) in queries.iter().enumerate() {
        let spec = parse_query(q).unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(i as u64 + 1)).unwrap();
        agent.install(cq.host_plans[0].clone()).unwrap();
    }
    agent
}

fn values() -> Vec<Value> {
    vec![
        Value::Long(123_456),
        Value::Long(2),
        Value::Double(0.97),
        Value::Str("us".into()),
    ]
}

fn bench_tap(c: &mut Criterion) {
    let mut g = c.benchmark_group("tap");

    // reference loop with the tap call removed: what the disabled fast
    // path must stay within noise of. The gap between this and
    // `disabled_event_type` is the whole cost an idle Scrub (plus its
    // self-observability counters) imposes per log call.
    let vals = values();
    g.bench_function("noop_baseline", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            criterion::black_box((EventTypeId(0), RequestId(i), i as i64, &vals));
        })
    });

    // the disabled fast path: one atomic load
    let idle = agent_with(&[]);
    g.bench_function("disabled_event_type", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            idle.log(EventTypeId(0), RequestId(i), i as i64, &vals);
        })
    });

    // one active query whose predicate rejects the event
    let nomatch = agent_with(&["select COUNT(*) from bid where bid.exchange_id = 99"]);
    g.bench_function("active_predicate_no_match", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            nomatch.log(EventTypeId(0), RequestId(i), i as i64, &vals);
        })
    });

    // one active query matching + projecting one field; this is also the
    // tracing-disabled guard — trace_sample_rate is 0 here, so compare
    // this number across commits to prove lifecycle tracing added nothing
    // to the default matched-event path (the only new work is one integer
    // compare against a precomputed threshold of 0)
    g.bench_function("active_match_project_1_field", |b| {
        b.iter_batched(
            || agent_with(&["select bid.user_id, COUNT(*) from bid group by bid.user_id"]),
            |agent| {
                for i in 0..1000u64 {
                    agent.log(EventTypeId(0), RequestId(i), i as i64, &vals);
                }
                agent
            },
            BatchSize::SmallInput,
        )
    });

    // the tracing-enabled twin: what a 5% lifecycle-trace rate costs on
    // the same matched path (hash + compare per event; span pushes for
    // the sampled 5%)
    g.bench_function("active_match_project_1_field_tracing_5pct", |b| {
        b.iter_batched(
            || {
                agent_with_trace_rate(
                    &["select bid.user_id, COUNT(*) from bid group by bid.user_id"],
                    0.05,
                )
            },
            |agent| {
                for i in 0..1000u64 {
                    agent.log(EventTypeId(0), RequestId(i), i as i64, &vals);
                }
                agent
            },
            BatchSize::SmallInput,
        )
    });

    // eight concurrent queries on the same event type (fresh agent per
    // batch so buffered-batch growth does not distort the per-event cost)
    let mix_queries = [
        "select COUNT(*) from bid where bid.exchange_id = 1",
        "select bid.user_id, COUNT(*) from bid group by bid.user_id",
        "select AVG(bid.bid_price) from bid",
        "select COUNT(*) from bid where bid.bid_price > 2.0",
        "select COUNT_DISTINCT(bid.user_id) from bid",
        "select MIN(bid.bid_price), MAX(bid.bid_price) from bid",
        "select COUNT(*) from bid where bid.country = 'de'",
        "select bid.exchange_id, COUNT(*) from bid group by bid.exchange_id",
    ];
    g.bench_function("active_8_queries_per_1k_events", |b| {
        b.iter_batched(
            || agent_with(&mix_queries),
            |agent| {
                for i in 0..1000u64 {
                    agent.log(EventTypeId(0), RequestId(i), i as i64, &vals);
                }
                agent
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_tap);
criterion_main!(benches);
