//! Criterion benchmarks of the ScrubQL front end (lexing + parsing +
//! planning) and the event wire codec — control-plane and data-plane costs
//! at the query server and on the wire.

use criterion::{criterion_group, criterion_main, Criterion};

use bytes::BytesMut;
use scrub_core::config::ScrubConfig;
use scrub_core::encode::{decode_batch, encode_batch, encode_event};
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

const SPAM_QUERY: &str = "Select bid.user_id, COUNT(*) from bid \
    @[Service in BidServers and Server = host1] group by bid.user_id \
    window 10 s duration 20 m";

const COMPLEX_QUERY: &str = "select bid.user_id, COUNT(*), AVG(bid.bid_price), \
    TOP(10, bid.country), COUNT_DISTINCT(bid.user_id) \
    from bid, exclusion \
    where bid.bid_price > 0.5 and bid.exchange_id in (1, 2, 3) \
      and exclusion.reason = 'budget_exhausted' \
    @[Service in (BidServers, AdServers) and not DC = DC3] \
    group by bid.user_id sample hosts 25% events 10% \
    window 30 s start in 1 m duration 15 m";

fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("exchange_id", FieldType::Long),
                FieldDef::new("bid_price", FieldType::Double),
                FieldDef::new("country", FieldType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg.register(
        EventSchema::new(
            "exclusion",
            vec![
                FieldDef::new("line_item_id", FieldType::Long),
                FieldDef::new("reason", FieldType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg
}

fn bench_ql(c: &mut Criterion) {
    let mut g = c.benchmark_group("ql");
    g.bench_function("parse_spam_query", |b| {
        b.iter(|| parse_query(std::hint::black_box(SPAM_QUERY)).unwrap())
    });
    g.bench_function("parse_complex_query", |b| {
        b.iter(|| parse_query(std::hint::black_box(COMPLEX_QUERY)).unwrap())
    });
    let reg = registry();
    let cfg = ScrubConfig::default();
    let spec = parse_query(COMPLEX_QUERY).unwrap();
    g.bench_function("plan_complex_query", |b| {
        b.iter(|| compile(std::hint::black_box(&spec), &reg, &cfg, QueryId(1)).unwrap())
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let ev = Event::new(
        EventTypeId(0),
        RequestId(123_456_789),
        1_700_000_000_000,
        vec![
            Value::Long(42),
            Value::Long(3),
            Value::Double(0.97),
            Value::Str("san jose".into()),
        ],
    );
    g.bench_function("encode_event", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(64);
            encode_event(&mut buf, std::hint::black_box(&ev));
            buf
        })
    });
    let batch: Vec<Event> = (0..256).map(|_| ev.clone()).collect();
    let frame = encode_batch(&batch);
    g.bench_function("encode_batch_256", |b| {
        b.iter(|| encode_batch(std::hint::black_box(&batch)))
    });
    g.bench_function("decode_batch_256", |b| {
        b.iter(|| decode_batch(std::hint::black_box(frame.clone())).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_ql, bench_codec);
criterion_main!(benches);
