//! Criterion benchmarks of ScrubCentral's ingest path: grouped
//! aggregation, the request-id equi-join, and partitioned execution
//! (batch-granularity hand-off behind the `IngestBackend` split).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use scrub_agent::{BatchPayload, EventBatch};
use scrub_central::{PartitionedExecutor, QueryExecutor};
use scrub_core::config::ScrubConfig;
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, CentralPlan, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg.register(
        EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
    )
    .unwrap();
    reg
}

fn plan(src: &str) -> CentralPlan {
    compile(
        &parse_query(src).unwrap(),
        &registry(),
        &ScrubConfig::default(),
        QueryId(1),
    )
    .unwrap()
    .central
}

fn bid_batch(n: u64) -> EventBatch {
    EventBatch {
        seq: 0,
        attempt: 0,
        query_id: QueryId(1),
        type_id: EventTypeId(0),
        host: "h".into(),
        payload: BatchPayload::Rows(
            (0..n)
                .map(|i| {
                    Event::new(
                        EventTypeId(0),
                        RequestId(i),
                        (i % 60_000) as i64,
                        vec![Value::Long((i % 1000) as i64), Value::Double(0.5)],
                    )
                })
                .collect(),
        ),
        matched: n,
        sampled: n,
        shed: 0,
        budget_shed: 0,
        seen: n,
        bytes: 0,
        spans: vec![],
    }
}

fn bench_central(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut g = c.benchmark_group("central");
    g.throughput(Throughput::Elements(N));

    g.bench_function("grouped_count_ingest_10k", |b| {
        let p = plan("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s");
        b.iter_batched(
            || (QueryExecutor::new(p.clone(), 0), bid_batch(N)),
            |(mut exec, batch)| {
                exec.ingest(batch);
                exec.advance(i64::MAX / 4)
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("stream_ingest_10k", |b| {
        let p = plan("select bid.user_id from bid");
        b.iter_batched(
            || (QueryExecutor::new(p.clone(), 0), bid_batch(N)),
            |(mut exec, batch)| {
                exec.ingest(batch);
                exec.advance_stream_only()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("join_ingest_10k", |b| {
        let p = plan("select COUNT(*) from bid, impression window 10 s");
        b.iter_batched(
            || {
                let imps = EventBatch {
                    seq: 0,
                    attempt: 0,
                    query_id: QueryId(1),
                    type_id: EventTypeId(1),
                    host: "h2".into(),
                    payload: BatchPayload::Rows(
                        (0..N / 2)
                            .map(|i| {
                                Event::new(
                                    EventTypeId(1),
                                    RequestId(i * 2),
                                    (i % 60_000) as i64,
                                    vec![],
                                )
                            })
                            .collect(),
                    ),
                    matched: N / 2,
                    sampled: N / 2,
                    shed: 0,
                    budget_shed: 0,
                    seen: N / 2,
                    bytes: 0,
                    spans: vec![],
                };
                (QueryExecutor::new(p.clone(), 0), bid_batch(N / 2), imps)
            },
            |(mut exec, bids, imps)| {
                exec.ingest(bids);
                exec.ingest(imps);
                exec.advance(i64::MAX / 4)
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("partitioned_4_grouped_count_10k", |b| {
        let p = plan("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s");
        b.iter_batched(
            || (PartitionedExecutor::new(p.clone(), 0, 4), bid_batch(N)),
            |(mut exec, batch)| {
                exec.ingest(batch);
                exec.advance(i64::MAX / 4)
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_central);
criterion_main!(benches);
