//! Criterion benchmarks of the probabilistic substrate: SpaceSaving,
//! HyperLogLog, Welford moments, and the two-stage estimator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use scrub_sketch::{estimate_total, HostSample, HyperLogLog, SpaceSaving, Welford};

fn bench_sketches(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketches");

    g.throughput(Throughput::Elements(1));
    g.bench_function("spacesaving_offer", |b| {
        b.iter_batched(
            || SpaceSaving::<u64>::new(80),
            |mut ss| {
                for i in 0..1000u64 {
                    ss.offer(i % 137);
                }
                ss
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("hll_add_1000", |b| {
        b.iter_batched(
            HyperLogLog::default_precision,
            |mut hll| {
                for i in 0..1000u64 {
                    hll.add_bytes(&i.to_le_bytes());
                }
                hll
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("hll_estimate", |b| {
        let mut hll = HyperLogLog::default_precision();
        for i in 0..100_000u64 {
            hll.add_bytes(&i.to_le_bytes());
        }
        b.iter(|| std::hint::black_box(&hll).estimate())
    });

    g.bench_function("welford_add_1000", |b| {
        b.iter_batched(
            Welford::new,
            |mut w| {
                for i in 0..1000 {
                    w.add(i as f64 * 0.1);
                }
                w
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("two_stage_estimate_100_hosts", |b| {
        let hosts: Vec<HostSample> = (0..100)
            .map(|h| {
                let mut hs = HostSample::new();
                for i in 0..50 {
                    hs.saw_match();
                    hs.sampled((h * 50 + i) as f64 * 0.01);
                }
                hs.population += 150; // unsampled matches
                hs
            })
            .collect();
        b.iter(|| estimate_total(200, std::hint::black_box(&hosts), 0.95))
    });

    g.finish();
}

criterion_group!(benches, bench_sketches);
criterion_main!(benches);
