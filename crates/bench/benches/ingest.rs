//! Criterion benchmarks of the parallel ingest pipeline: whole-batch
//! hand-off + per-partition pre-folding for aggregate queries and
//! request-id-split routing for joins (the `ThreadedBackend`), against
//! the `partitions = 1` `InlineBackend` fast path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use scrub_agent::{BatchPayload, EventBatch};
use scrub_central::PartitionedExecutor;
use scrub_core::config::{ScrubConfig, WireFormat};
use scrub_core::event::{Event, RequestId};
use scrub_core::plan::{compile, CentralPlan, QueryId};
use scrub_core::ql::parser::parse_query;
use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};
use scrub_core::value::Value;

fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        EventSchema::new(
            "bid",
            vec![
                FieldDef::new("user_id", FieldType::Long),
                FieldDef::new("price", FieldType::Double),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    reg.register(
        EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
    )
    .unwrap();
    reg
}

fn plan(src: &str) -> CentralPlan {
    compile(
        &parse_query(src).unwrap(),
        &registry(),
        &ScrubConfig::default(),
        QueryId(1),
    )
    .unwrap()
    .central
}

fn bid_batch(n: u64, format: WireFormat) -> EventBatch {
    let events = (0..n)
        .map(|i| {
            Event::new(
                EventTypeId(0),
                RequestId(i),
                (i % 60_000) as i64,
                vec![Value::Long((i % 1000) as i64), Value::Double(0.5)],
            )
        })
        .collect();
    EventBatch {
        seq: 0,
        attempt: 0,
        query_id: QueryId(1),
        type_id: EventTypeId(0),
        host: "h".into(),
        payload: BatchPayload::from_events(events, format),
        matched: n,
        sampled: n,
        shed: 0,
        budget_shed: 0,
        seen: n,
        bytes: 0,
        spans: vec![],
    }
}

fn imp_batch(n: u64, format: WireFormat) -> EventBatch {
    let events = (0..n)
        .map(|i| {
            Event::new(
                EventTypeId(1),
                RequestId(i * 2),
                (i % 60_000) as i64,
                vec![],
            )
        })
        .collect();
    EventBatch {
        seq: 0,
        attempt: 0,
        query_id: QueryId(1),
        type_id: EventTypeId(1),
        host: "h2".into(),
        payload: BatchPayload::from_events(events, format),
        matched: n,
        sampled: n,
        shed: 0,
        budget_shed: 0,
        seen: n,
        bytes: 0,
        spans: vec![],
    }
}

fn bench_ingest(c: &mut Criterion) {
    const N: u64 = 10_000;
    let agg_src = "select bid.user_id, COUNT(*), AVG(bid.price) from bid \
                   group by bid.user_id window 10 s";
    let join_src = "select COUNT(*) from bid, impression window 10 s";

    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(N));

    // Aggregate mode: routing + threaded ingest + merged window close,
    // per wire format (row = v1 event loop, col = vectorized columnar).
    for parts in [1usize, 4] {
        for (fmt_name, fmt) in [("row", WireFormat::Row), ("col", WireFormat::Columnar)] {
            let name = format!("aggregate_{fmt_name}_p{parts}_10k");
            g.bench_function(&name, |b| {
                let p = plan(agg_src);
                b.iter_batched(
                    || {
                        (
                            PartitionedExecutor::new(p.clone(), 0, parts),
                            bid_batch(N, fmt),
                        )
                    },
                    |(mut exec, batch)| {
                        exec.ingest(batch);
                        exec.advance(i64::MAX / 4)
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }

    // Join mode: request-id shard routing keeps the join partition-local
    // (the only plan shape that still splits batches).
    for parts in [1usize, 4] {
        let name = format!("join_p{parts}_10k");
        g.bench_function(&name, |b| {
            let p = plan(join_src);
            b.iter_batched(
                || {
                    (
                        PartitionedExecutor::new(p.clone(), 0, parts),
                        bid_batch(N / 2, WireFormat::Row),
                        imp_batch(N / 2, WireFormat::Row),
                    )
                },
                |(mut exec, bids, imps)| {
                    exec.ingest(bids);
                    exec.ingest(imps);
                    exec.advance(i64::MAX / 4)
                },
                BatchSize::SmallInput,
            )
        });
    }

    // The partitions=1 fast path: pure ingest, no advance — isolates the
    // per-event decode+fold cost per wire format (the tentpole
    // comparison: vectorized columnar vs the v1 row loop).
    for (fmt_name, fmt) in [("row", WireFormat::Row), ("col", WireFormat::Columnar)] {
        let name = format!("inline_ingest_only_{fmt_name}_10k");
        g.bench_function(&name, |b| {
            let p = plan(agg_src);
            b.iter_batched(
                || (PartitionedExecutor::new(p.clone(), 0, 1), bid_batch(N, fmt)),
                |(mut exec, batch)| exec.ingest(batch),
                BatchSize::SmallInput,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
