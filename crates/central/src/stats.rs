//! One-call observability snapshot for the partitioned executor.
//!
//! Before the batch-pipeline redesign, `PartitionedExecutor` grew about a
//! dozen ad-hoc getters (`events_routed()`, `backpressure_events()`,
//! `degraded_rows()`, `groups_overflow()`, `take_backpressure()`, …) and
//! every caller stitched its own picture from several calls that could
//! interleave with ingest. [`ExecutorStats`] replaces them: one
//! `stats()` call returns a coherent snapshot of every counter the
//! server, benches, and tests consume.

/// Busy/idle wall-clock attribution for one partition worker thread.
///
/// `idle_ns` is time blocked on the ingest channel (starved or waiting
/// for the next hand-off), `busy_ns` is time folding batches or serving a
/// barrier. The split is what makes scaling regressions attributable: a
/// slow pipeline with idle workers points at the router or the hand-off
/// protocol, busy workers point at the fold itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerTime {
    /// Partition index of the worker.
    pub partition: usize,
    /// Nanoseconds spent processing commands (ingest folds + barriers).
    pub busy_ns: u64,
    /// Nanoseconds spent blocked waiting for the next command.
    pub idle_ns: u64,
}

/// Coherent snapshot of every observable counter of a
/// [`PartitionedExecutor`](crate::PartitionedExecutor).
///
/// All counters are cumulative since executor creation. Callers that
/// need deltas (the server's per-tick metrics) keep the previous
/// snapshot and subtract. Every field except `backpressure_stalls` and
/// the `workers` timings is deterministic and partition-invariant —
/// identical for the inline backend and any threaded partition count on
/// the same input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutorStats {
    /// Partition count (1 = inline deterministic reference).
    pub partitions: usize,
    /// Events routed into the backend (each ingested event exactly once,
    /// whether the batch was handed off whole or split by request id).
    pub events_routed: u64,
    /// Times an ingest hand-off found the partition channel full and had
    /// to block. Cumulative; nondeterministic (scheduling-dependent) and
    /// always 0 for the inline backend.
    pub backpressure_stalls: u64,
    /// Result rows marked degraded at emission (host death / overflow).
    pub degraded_rows: u64,
    /// Batches discarded as duplicate (host, query, seq) retransmissions.
    pub duplicate_batches: u64,
    /// Rows dropped by the `max_groups` bound, including router re-cap
    /// drops. Partition-invariant (see `update_groups`).
    pub groups_overflow: u64,
    /// Windows that produced at least one result row (counted once at the
    /// router, so partition-invariant).
    pub windows_emitted: u64,
    /// Windows currently open. For the threaded backend this is the sum
    /// over partitions as of the last advance barrier (gauges are not
    /// worth a barrier of their own).
    pub open_windows: usize,
    /// Events buffered for the join across open windows; same barrier
    /// staleness as `open_windows`.
    pub join_rows_held: u64,
    /// Advance calls that paid the cross-partition barrier.
    pub advance_barriers: u64,
    /// Advance calls answered from the watermark alone — no window could
    /// be due, so no barrier was paid (the amortized-advance fast path;
    /// always 0 inline where advancing is just a method call).
    pub advances_skipped: u64,
    /// Per-worker busy/idle attribution. Empty for the inline backend.
    pub workers: Vec<WorkerTime>,
}
