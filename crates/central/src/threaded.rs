//! The batch-granularity threaded ingest backend.
//!
//! The first threaded backend (PR 3) was a request/reply protocol: every
//! batch was split by request-id hash into one sub-batch per partition
//! (header replicated to all of them), and every `advance` tick paid a
//! full cross-partition barrier that shipped per-partition scale,
//! profiles, and gauges back to the router. At realistic batch sizes the
//! per-command overhead dominated the fold itself and threaded throughput
//! ran *below* inline. This module is the redesign:
//!
//! * **Whole-batch hand-off.** Non-join plans hand each `EventBatch` to
//!   one partition, round-robin — no split, no header replication, no
//!   per-event hashing. The group-state merge makes any row partitioning
//!   equivalent (see `update_groups`), so batch granularity is free.
//!   Join plans still split by request id (the equi-join must stay
//!   partition-local), but only non-empty shards are sent.
//! * **Router-authoritative totals.** The router observes every batch
//!   header once into its own `TotalsTracker` before handing the batch
//!   off; workers fold events and estimator moments only (via
//!   [`QueryExecutor::ingest_routed`]). Scale, summary totals, host-side
//!   profile operators and notes all come from the router — bit-identical
//!   to inline, since it sees the same header stream in the same order.
//! * **Two-phase aggregation.** Each partition folds its own group/window
//!   state; the advance barrier ships pre-folded [`WindowPartial`]s
//!   (group maps with mergeable [`AggState`](crate::agg::AggState)s,
//!   Welford moments at finish) and the router merges states — rows are
//!   never replayed or re-folded.
//! * **Amortized advance.** The router tracks which window starts can
//!   possibly be open (`pending_low`/`max_start`, maintained from batch
//!   timestamp ranges at hand-off time). A tick that provably closes
//!   nothing skips the barrier entirely and just records its watermark,
//!   which piggybacks on subsequent ingest hand-offs; the barrier is only
//!   paid when a window is actually due. Stream-mode plans always barrier
//!   (rows must drain every tick, same as inline).
//!
//! Each threaded query owns `partitions` worker threads plus `partitions`
//! bounded channels of up to [`INGEST_CHANNEL_CAP`] hand-offs for its
//! whole lifetime; with N concurrently installed queries that is N×p
//! threads. A shared cross-query pool is future work — until then, size
//! `central_partitions` with the expected concurrent query count in mind.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use scrub_agent::{BatchPayload, EventBatch};
use scrub_core::event::Event;
use scrub_core::plan::{CentralPlan, OutputMode};
use scrub_obs::PlanProfile;

use crate::backend::{private, BackendAdvance, IngestBackend};
use crate::executor::{estimates_from_states, HostEstimatorState, QueryExecutor, WindowPartial};
use crate::row::{QuerySummary, ResultRow};
use crate::stats::WorkerTime;
use crate::totals::TotalsTracker;

/// Per-partition hand-off channel capacity (whole batches in flight).
/// Deep on purpose: the channel is the pipeline's only buffer, and the
/// router must stay ahead of a worker absorbing a window close without
/// stalling. Beyond it the router records a backpressure stall and
/// blocks.
pub const INGEST_CHANNEL_CAP: usize = 1024;

/// Commands the router sends each partition worker.
enum Cmd {
    /// A whole batch (round-robin) or join shard (request-id routed) with
    /// the router's current watermark piggybacked — the worker may fold
    /// closed windows into its pending buffer without a barrier.
    Ingest { batch: EventBatch, watermark: i64 },
    /// Barrier: drain stream rows + closed partials up to `now_ms`.
    Advance(i64),
    /// Barrier: export per-host estimator moments (every partition holds
    /// a slice of each host's sampled moments; the router merges them).
    Finish,
    /// Barrier: export the central-op profile slice.
    Profile,
    /// Exit the worker loop.
    Shutdown,
}

/// One partition's contribution to a [`Cmd::Advance`] barrier. No scale
/// and no profile — the router owns both now, which is most of the
/// barrier weight the old protocol carried.
struct AdvanceReply {
    stream_rows: Vec<ResultRow>,
    partials: Vec<WindowPartial>,
    open_windows: usize,
    join_rows_held: u64,
}

enum ReplyBody {
    Advance(AdvanceReply),
    Finish(Vec<HostEstimatorState>),
    Profile(Box<PlanProfile>),
}

struct Reply {
    part: usize,
    body: ReplyBody,
}

/// Shared busy/idle clock written by a worker, read by `worker_times`.
#[derive(Default)]
struct WorkerClock {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

/// A partition worker: bounded command channel, its clock, and a joinable
/// thread.
struct Worker {
    tx: mpsc::SyncSender<Cmd>,
    clock: Arc<WorkerClock>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// `partitions >= 2`: one worker thread per partition fed whole batches
/// over deep bounded channels. See the module docs for the protocol.
pub struct ThreadedBackend {
    plan: Arc<CentralPlan>,
    grace_ms: i64,
    workers: Vec<Worker>,
    reply_rx: mpsc::Receiver<Reply>,
    /// Router-side header accounting — authoritative for totals, scale,
    /// host-side profile figures and notes (workers never observe
    /// headers).
    totals: TotalsTracker,
    /// Round-robin cursor for whole-batch hand-off (non-join plans).
    rr: usize,
    is_join: bool,
    stream_mode: bool,
    /// Latest watermark seen (from barriers and skipped ticks), carried
    /// on ingest hand-offs.
    watermark: i64,
    /// Lowest window start that can possibly still be open, or `None`
    /// when every routed window has provably closed. Conservative: may
    /// under-shoot (extra barrier), never over-shoots (missed close).
    pending_low: Option<i64>,
    /// Largest window start any routed event covered.
    max_start: i64,
    /// Gauges cached from the latest advance barrier (partition threads
    /// own the live state; these lag by at most one barrier).
    open_windows: usize,
    join_rows_held: u64,
}

impl ThreadedBackend {
    /// Spawn `partitions` workers for a plan. `PartitionedExecutor::new`
    /// only builds this for `partitions >= 2`, but any count >= 1 works.
    pub fn new(plan: impl Into<Arc<CentralPlan>>, grace_ms: i64, partitions: usize) -> Self {
        let plan = plan.into();
        let partitions = partitions.max(1);
        let (reply_tx, reply_rx) = mpsc::channel();
        let workers = (0..partitions)
            .map(|part| {
                let (tx, rx) = mpsc::sync_channel::<Cmd>(INGEST_CHANNEL_CAP);
                let exec = QueryExecutor::new(Arc::clone(&plan), grace_ms);
                let reply_tx = reply_tx.clone();
                let clock = Arc::new(WorkerClock::default());
                let worker_clock = Arc::clone(&clock);
                let handle = std::thread::Builder::new()
                    .name(format!("scrub-central-p{part}"))
                    .spawn(move || worker_loop(exec, part, rx, reply_tx, worker_clock))
                    .expect("spawn central partition worker");
                Worker {
                    tx,
                    clock,
                    handle: Some(handle),
                }
            })
            .collect();
        let is_join = plan.inputs.len() > 1;
        let stream_mode = matches!(plan.mode, OutputMode::Stream(_));
        ThreadedBackend {
            plan,
            grace_ms,
            workers,
            reply_rx,
            totals: TotalsTracker::default(),
            rr: 0,
            is_join,
            stream_mode,
            watermark: i64::MIN,
            pending_low: None,
            max_start: i64::MIN,
            open_windows: 0,
            join_rows_held: 0,
        }
    }

    /// Track the window-start range a batch's events cover, for the
    /// amortized-advance due check. Late events already past the
    /// watermark only make `pending_low` conservative (an extra no-op
    /// barrier), never wrong.
    fn note_window_range(&mut self, range: Option<(i64, i64)>) {
        let Some((ts_min, ts_max)) = range else {
            return;
        };
        let w = self.plan.window_ms;
        let s = self.plan.slide_ms;
        let first_cover = ((ts_min - w).div_euclid(s) + 1) * s;
        let last_cover = ts_max.div_euclid(s) * s;
        self.pending_low = Some(match self.pending_low {
            Some(lo) => lo.min(first_cover),
            None => first_cover,
        });
        self.max_start = self.max_start.max(last_cover);
    }

    /// Hand one command to a partition, counting a backpressure stall if
    /// the channel is full (then blocking — the caller slows to the
    /// partitions' pace instead of buffering unboundedly).
    fn send_ingest(&self, part: usize, batch: EventBatch) -> u64 {
        let cmd = Cmd::Ingest {
            batch,
            watermark: self.watermark,
        };
        match self.workers[part].tx.try_send(cmd) {
            Ok(()) => 0,
            Err(mpsc::TrySendError::Full(cmd)) => {
                self.workers[part]
                    .tx
                    .send(cmd)
                    .expect("central partition worker alive");
                1
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                panic!("central partition worker died");
            }
        }
    }

    /// Collect exactly one reply per partition and return them in
    /// partition order — the determinism pivot of the parallel path.
    fn collect<T>(&self, extract: impl Fn(ReplyBody) -> T) -> Vec<T> {
        let n = self.workers.len();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let reply = self
                .reply_rx
                .recv()
                .expect("central partition worker alive");
            slots[reply.part] = Some(extract(reply.body));
        }
        slots
            .into_iter()
            .map(|s| s.expect("one reply per partition"))
            .collect()
    }
}

impl private::Sealed for ThreadedBackend {}

impl IngestBackend for ThreadedBackend {
    fn partitions(&self) -> usize {
        self.workers.len()
    }

    fn plan_arc(&self) -> Arc<CentralPlan> {
        Arc::clone(&self.plan)
    }

    fn route_partition(&self, request_id: u64) -> usize {
        if self.is_join {
            (mix(request_id) % self.workers.len() as u64) as usize
        } else {
            self.rr
        }
    }

    fn ingest(&mut self, batch: EventBatch) -> u64 {
        self.totals.observe_header(&batch);
        self.note_window_range(batch.payload.ts_range());
        if batch.is_empty() {
            // Header-only batch: the router just folded everything a
            // worker could use from it.
            return 0;
        }
        let mut stalls = 0;
        if self.is_join {
            for (part, shard) in split_by_request_id(batch, self.workers.len()) {
                stalls += self.send_ingest(part, shard);
            }
        } else {
            let part = self.rr;
            self.rr = (self.rr + 1) % self.workers.len();
            stalls += self.send_ingest(part, batch);
        }
        stalls
    }

    fn note_watermark(&mut self, now_ms: i64) {
        self.watermark = self.watermark.max(now_ms);
    }

    fn needs_advance(&self, now_ms: i64) -> bool {
        if self.stream_mode {
            // Stream rows must drain every tick, exactly like inline.
            return true;
        }
        let cutoff = now_ms
            .saturating_sub(self.plan.window_ms)
            .saturating_sub(self.grace_ms);
        match self.pending_low {
            Some(lo) => lo <= cutoff,
            None => false,
        }
    }

    fn advance(&mut self, now_ms: i64) -> BackendAdvance {
        for w in &self.workers {
            w.tx.send(Cmd::Advance(now_ms))
                .expect("central partition worker alive");
        }
        let replies = self.collect(|body| {
            let ReplyBody::Advance(body) = body else {
                panic!("unexpected reply kind during advance barrier");
            };
            body
        });
        self.open_windows = replies.iter().map(|r| r.open_windows).max().unwrap_or(0);
        self.join_rows_held = replies.iter().map(|r| r.join_rows_held).sum();
        let mut stream_rows = Vec::new();
        let mut partials = Vec::new();
        for reply in replies {
            stream_rows.extend(reply.stream_rows);
            partials.extend(reply.partials);
        }
        // Every window with start <= cutoff is closed across all workers
        // (the cutoff is uniform); the lowest possibly-open start is the
        // first aligned start past it.
        let cutoff = now_ms
            .saturating_sub(self.plan.window_ms)
            .saturating_sub(self.grace_ms);
        if self.max_start <= cutoff {
            self.pending_low = None;
        } else {
            let next = (cutoff.div_euclid(self.plan.slide_ms) + 1) * self.plan.slide_ms;
            let lo = self.pending_low.unwrap_or(next).max(next);
            self.pending_low = Some(lo);
        }
        self.watermark = self.watermark.max(now_ms);
        BackendAdvance {
            stream_rows,
            partials,
            // The router observed every header synchronously at ingest,
            // so this is the same value the inline executor computes at
            // its own advance.
            scale: self.totals.scale(&self.plan),
        }
    }

    fn set_dead_hosts(&mut self, _hosts: &HashSet<String>) {
        // Workers no longer need the dead set: their summaries and
        // estimates are never used (the router computes both), and dead
        // hosts' already-ingested events stay by design.
    }

    fn finish_summary(&mut self, dead_hosts: &HashSet<String>) -> QuerySummary {
        for w in &self.workers {
            w.tx.send(Cmd::Finish)
                .expect("central partition worker alive");
        }
        let exports = self.collect(|body| {
            let ReplyBody::Finish(states) = body else {
                panic!("unexpected reply kind during finish barrier");
            };
            states
        });
        // Seed the merged per-host states from the router's first-seen
        // host order with its authoritative cumulative `matched`, then
        // fold each worker's moments in partition order — the same
        // deterministic reduction order as the inline executor's export.
        let mut merged: Vec<HostEstimatorState> = self
            .totals
            .per_host_matched()
            .into_iter()
            .map(|(h, matched)| HostEstimatorState {
                host: self.totals.name(h).to_string(),
                matched,
                moments: Vec::new(),
            })
            .collect();
        let mut index: std::collections::HashMap<String, usize> = merged
            .iter()
            .enumerate()
            .map(|(i, st)| (st.host.clone(), i))
            .collect();
        for states in exports {
            for st in states {
                match index.get(&st.host) {
                    Some(&i) => merged[i].merge(st),
                    None => {
                        // A worker interned a host the router never saw a
                        // header from — impossible today (workers only see
                        // routed batches), kept total rather than lossy.
                        index.insert(st.host.clone(), merged.len());
                        merged.push(st);
                    }
                }
            }
        }
        let (total_matched, total_sampled, total_shed, total_budget_shed) = self.totals.sums();
        QuerySummary {
            query_id: self.plan.query_id,
            hosts_reporting: self.totals.hosts_reporting(),
            total_matched,
            total_sampled,
            total_shed,
            total_budget_shed,
            // counted at the router (partition-invariant there); it
            // overwrites these after this call, same as the other
            // router-owned fields
            windows_emitted: 0,
            estimates: estimates_from_states(&self.plan, &merged, dead_hosts),
            hosts_targeted: self.plan.host_info.selected,
            hosts_live: self.totals.hosts_live(dead_hosts),
            degraded_rows: 0,
            duplicate_batches: 0,
            groups_overflow: 0,
        }
    }

    fn plan_profile(&self) -> PlanProfile {
        for w in &self.workers {
            w.tx.send(Cmd::Profile)
                .expect("central partition worker alive");
        }
        let mut parts = self
            .collect(|body| {
                let ReplyBody::Profile(p) = body else {
                    panic!("unexpected reply kind during profile barrier");
                };
                p
            })
            .into_iter();
        let mut acc = *parts.next().expect("at least one partition");
        for p in parts {
            acc.merge(&p);
        }
        // Central ops merged by sum above (disjoint event slices); host
        // ops and notes derive from header totals only the router
        // observed.
        self.totals.fill_host_ops(&self.plan, &mut acc);
        acc.notes = self.totals.profile_notes(&self.plan);
        acc
    }

    fn gauges(&self) -> (usize, u64) {
        (self.open_windows, self.join_rows_held)
    }

    fn worker_times(&self) -> Vec<WorkerTime> {
        self.workers
            .iter()
            .enumerate()
            .map(|(partition, w)| WorkerTime {
                partition,
                busy_ns: w.clock.busy_ns.load(Ordering::Relaxed),
                idle_ns: w.clock.idle_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl Drop for ThreadedBackend {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(
    mut exec: QueryExecutor,
    part: usize,
    rx: mpsc::Receiver<Cmd>,
    reply_tx: mpsc::Sender<Reply>,
    clock: Arc<WorkerClock>,
) {
    // Windows closed opportunistically on piggybacked watermarks, held
    // until the next advance barrier ships them to the router.
    let mut pending: Vec<WindowPartial> = Vec::new();
    loop {
        let t_idle = Instant::now();
        let Ok(cmd) = rx.recv() else {
            return; // router gone
        };
        clock
            .idle_ns
            .fetch_add(t_idle.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let t_busy = Instant::now();
        match cmd {
            Cmd::Ingest { batch, watermark } => {
                exec.ingest_routed(batch);
                // Under the router's conservative due-tracking this close
                // is a no-op (watermarks only piggyback from ticks where
                // nothing was due), but the protocol keeps the worker's
                // window set tight if that policy ever loosens. `i64::MIN`
                // is the no-watermark-yet sentinel.
                if watermark > i64::MIN {
                    pending.extend(exec.take_closed_partials(watermark));
                }
            }
            Cmd::Advance(now_ms) => {
                let stream_rows = exec.advance_stream_only();
                let mut partials = std::mem::take(&mut pending);
                partials.extend(exec.take_closed_partials(now_ms));
                let body = AdvanceReply {
                    stream_rows,
                    partials,
                    open_windows: exec.open_windows(),
                    join_rows_held: (exec.buffered_events() + exec.open_groups()) as u64,
                };
                if reply_tx
                    .send(Reply {
                        part,
                        body: ReplyBody::Advance(body),
                    })
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Finish => {
                if reply_tx
                    .send(Reply {
                        part,
                        body: ReplyBody::Finish(exec.export_estimator_state()),
                    })
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Profile => {
                if reply_tx
                    .send(Reply {
                        part,
                        body: ReplyBody::Profile(Box::new(exec.plan_profile_partial())),
                    })
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Shutdown => return,
        }
        clock
            .busy_ns
            .fetch_add(t_busy.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Split a batch by request-id hash into per-partition shards in a single
/// pass, returning only the non-empty ones. Every event lands in exactly
/// one shard. Shard headers keep the host name (workers intern it for
/// estimator moments) but zero the cumulative counters — the router
/// already observed them, and replicating them is exactly the
/// double-count hazard the old protocol had to max-merge around.
pub(crate) fn split_by_request_id(
    batch: EventBatch,
    partitions: usize,
) -> Vec<(usize, EventBatch)> {
    let p = partitions as u64;
    let mut shards: Vec<Vec<Event>> = (0..partitions).map(|_| Vec::new()).collect();
    let total = batch.len();
    // Joins shard by request id, so columnar frames materialise here —
    // the per-request buffers hold events anyway.
    for ev in batch.payload.into_rows() {
        let shard = (mix(ev.request_id.0) % p) as usize;
        shards[shard].push(ev);
    }
    debug_assert_eq!(
        shards.iter().map(Vec::len).sum::<usize>(),
        total,
        "split must route every event to exactly one partition"
    );
    shards
        .into_iter()
        .enumerate()
        .filter(|(_, events)| !events.is_empty())
        .map(|(part, events)| {
            (
                part,
                EventBatch {
                    query_id: batch.query_id,
                    seq: batch.seq,
                    attempt: batch.attempt,
                    type_id: batch.type_id,
                    host: batch.host.clone(),
                    payload: BatchPayload::Rows(events),
                    matched: 0,
                    sampled: 0,
                    shed: 0,
                    budget_shed: 0,
                    seen: 0,
                    bytes: 0,
                    spans: vec![],
                },
            )
        })
        .collect()
}

/// splitmix64-style mixer for request-id routing.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
