//! Per-host header accounting, shared by the inline executor and the
//! batch-pipeline router.
//!
//! Batch headers carry each host's *cumulative* matched/sampled/shed
//! counters. Exactly one place must fold them — the component that sees
//! every batch exactly once. For the inline backend that is the
//! [`QueryExecutor`](crate::executor::QueryExecutor) itself; for the
//! threaded backend it is the router, which observes each header before
//! handing the whole batch to one partition (workers fold events only and
//! never see authoritative totals). Both embed a [`TotalsTracker`], so
//! scale, summary totals, host-side `EXPLAIN ANALYZE` operators and the
//! profile notes are computed by the same code and agree bit-for-bit
//! across backends.

use std::collections::HashMap;
use std::sync::Arc;

use scrub_agent::{CostModel, EventBatch};
use scrub_core::plan::{CentralPlan, OperatorKind};
use scrub_core::schema::EventTypeId;
use scrub_obs::PlanProfile;

/// Cumulative per-host counters extracted from batch headers.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct HostTotals {
    pub matched: u64,
    pub sampled: u64,
    pub shed: u64,
    pub budget_shed: u64,
    pub seen: u64,
    pub bytes: u64,
}

/// Dense id for an interned host name; per-batch and per-event host
/// bookkeeping uses the id instead of cloning the host `String`.
pub(crate) type HostId = u32;

/// Host-name interner: one `Arc<str>` allocation the first time a host is
/// seen, integer keys everywhere after. Ids are assigned in first-seen
/// order, which fixes every host-ordered floating-point reduction.
#[derive(Debug, Default)]
pub(crate) struct HostTable {
    ids: HashMap<Arc<str>, HostId>,
    names: Vec<Arc<str>>,
}

impl HostTable {
    pub fn intern(&mut self, name: &str) -> HostId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as HostId;
        let arc: Arc<str> = Arc::from(name);
        self.names.push(arc.clone());
        self.ids.insert(arc, id);
        id
    }

    pub fn name(&self, id: HostId) -> &str {
        &self.names[id as usize]
    }
}

/// Interner + cumulative per-(host, subscription) header counters, plus
/// every derived figure the equality contract cares about.
#[derive(Debug, Default)]
pub(crate) struct TotalsTracker {
    hosts: HostTable,
    totals: HashMap<(HostId, EventTypeId), HostTotals>,
}

impl TotalsTracker {
    /// Intern a host name without observing any counters (used by
    /// partition workers, which track estimator moments per host but are
    /// not authoritative for totals).
    pub fn intern(&mut self, host: &str) -> HostId {
        self.hosts.intern(host)
    }

    pub fn name(&self, id: HostId) -> &str {
        self.hosts.name(id)
    }

    /// Fold one batch header. Counters are cumulative and monotonic per
    /// (host, subscription); batches can be reordered in flight (delivery
    /// delay grows with batch size), so merge with max rather than
    /// last-writer-wins.
    pub fn observe_header(&mut self, batch: &EventBatch) -> HostId {
        let hid = self.hosts.intern(&batch.host);
        let totals = self.totals.entry((hid, batch.type_id)).or_default();
        totals.matched = totals.matched.max(batch.matched);
        totals.sampled = totals.sampled.max(batch.sampled);
        totals.shed = totals.shed.max(batch.shed);
        totals.budget_shed = totals.budget_shed.max(batch.budget_shed);
        totals.seen = totals.seen.max(batch.seen);
        totals.bytes = totals.bytes.max(batch.bytes);
        hid
    }

    /// Current scale-up factor compensating host and event sampling:
    /// `(N/n) · (ΣM_i/Σm_i)` using observed totals (Eq. 1's population
    /// scale, applied globally).
    pub fn scale(&self, plan: &CentralPlan) -> f64 {
        let host_scale = if plan.host_info.selected > 0 && plan.host_info.matching > 0 {
            plan.host_info.matching as f64 / plan.host_info.selected as f64
        } else {
            1.0
        };
        let (m, s) = self
            .totals
            .values()
            .fold((0u64, 0u64), |(m, s), t| (m + t.matched, s + t.sampled));
        let event_scale = if s > 0 { m as f64 / s as f64 } else { 1.0 };
        host_scale * event_scale
    }

    /// `(matched, sampled, shed, budget_shed)` summed across hosts.
    pub fn sums(&self) -> (u64, u64, u64, u64) {
        self.totals.values().fold((0, 0, 0, 0), |(m, s, d, b), t| {
            (m + t.matched, s + t.sampled, d + t.shed, b + t.budget_shed)
        })
    }

    /// Distinct hosts that reported at least one batch.
    pub fn hosts_reporting(&self) -> usize {
        self.distinct_hosts().len()
    }

    /// Reporting hosts not currently suspected dead.
    pub fn hosts_live(&self, dead_hosts: &std::collections::HashSet<String>) -> usize {
        self.distinct_hosts()
            .iter()
            .filter(|h| !dead_hosts.contains(self.hosts.name(**h)))
            .count()
    }

    fn distinct_hosts(&self) -> std::collections::HashSet<HostId> {
        self.totals.keys().map(|(h, _)| *h).collect()
    }

    /// Per-host cumulative matched counts in `HostId` (first-seen) order —
    /// the deterministic host order of every estimator reduction.
    /// (Estimator-eligible queries are single-input, so the (host, type)
    /// key degenerates to the host; matched sums over the host's
    /// subscriptions.)
    pub fn per_host_matched(&self) -> std::collections::BTreeMap<HostId, u64> {
        let mut per_host: std::collections::BTreeMap<HostId, u64> =
            std::collections::BTreeMap::new();
        for ((h, _), t) in &self.totals {
            *per_host.entry(*h).or_default() += t.matched;
        }
        per_host
    }

    /// Summed header counters for one input's event type across hosts
    /// (within a host the observe-time merge already kept the max of the
    /// monotone cumulative stream).
    pub fn input_totals(&self, type_id: EventTypeId) -> HostTotals {
        let mut out = HostTotals::default();
        for ((_h, t), totals) in &self.totals {
            if *t == type_id {
                out.matched += totals.matched;
                out.sampled += totals.sampled;
                out.shed += totals.shed;
                out.budget_shed += totals.budget_shed;
                out.seen += totals.seen;
                out.bytes += totals.bytes;
            }
        }
        out
    }

    /// Fill the host-side operators (selection/sampling/projection) of a
    /// profile from the observed header totals, pricing ns through the
    /// agent's deterministic [`CostModel`] — the paper's host agents never
    /// time their own hot path (that would be overhead), so central
    /// attributes host ns from the same model the ≤2.5 % CPU envelope is
    /// audited against.
    pub fn fill_host_ops(&self, plan: &CentralPlan, profile: &mut PlanProfile) {
        let model = CostModel::default();
        for desc in plan.operators() {
            if !matches!(
                desc.kind,
                OperatorKind::Selection | OperatorKind::Sampling | OperatorKind::Projection
            ) {
                continue;
            }
            let input = &plan.inputs[desc.input.expect("host ops carry their input")];
            let t = self.input_totals(input.type_id);
            let Some(op) = profile.op_mut(desc.id.0) else {
                continue;
            };
            match desc.kind {
                OperatorKind::Selection => {
                    op.rows_in = t.seen;
                    op.rows_out = t.matched;
                    op.ns = model.selection_ns(t.seen, input.has_predicate);
                }
                OperatorKind::Sampling => {
                    // `sampled` counts events actually shipped; shed and
                    // budget-shed events survived the sampling decision
                    // too, so the operator's selectivity audits against
                    // (sampled + shed + budget_shed) / matched.
                    op.rows_in = t.matched;
                    op.rows_out = t.sampled + t.shed + t.budget_shed;
                    op.bytes = t.bytes;
                    op.ns = model.sampling_ns(t.sampled, t.bytes);
                }
                _ => {
                    op.rows_in = t.sampled;
                    op.rows_out = t.sampled;
                    op.ns = model.projection_ns(t.sampled, input.fields.len());
                }
            }
        }
    }

    /// The profile annotation notes derived from plan constants and the
    /// observed totals. Computed by whichever component is authoritative
    /// for the totals, so inline and threaded backends produce identical
    /// strings.
    pub fn profile_notes(&self, plan: &CentralPlan) -> Vec<String> {
        let mut notes = Vec::new();
        let hi = &plan.host_info;
        if hi.selected > 0 && hi.matching > hi.selected {
            notes.push(format!(
                "host sampling: {} of {} matching hosts selected (two-stage τ̂, Eqs 1–3)",
                hi.selected, hi.matching
            ));
        }
        let mut all = HostTotals::default();
        for input in &plan.inputs {
            let t = self.input_totals(input.type_id);
            all.matched += t.matched;
            all.sampled += t.sampled;
            all.shed += t.shed;
            all.budget_shed += t.budget_shed;
        }
        if plan.sample.event_fraction < 1.0 {
            notes.push(format!(
                "event sampling {:.0}%: hosts shipped {} of {} matched events",
                plan.sample.event_fraction * 100.0,
                all.sampled,
                all.matched
            ));
        }
        if all.shed > 0 {
            notes.push(format!(
                "load shedding dropped {} sampled events before ship (accuracy traded for host impact)",
                all.shed
            ));
        }
        if all.budget_shed > 0 {
            notes.push(format!(
                "budget shedding dropped {} sampled events before ship (host CPU budget enforced)",
                all.budget_shed
            ));
        }
        notes
    }
}
