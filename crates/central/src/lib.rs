//! # scrub-central
//!
//! ScrubCentral (§4): the dedicated centralized facility where everything
//! expensive happens — tumbling-window management, the request-id
//! equi-join, group-by, and exact + probabilistic aggregation — so that
//! none of it runs on the hosts serving the application. Partitioned
//! execution with mergeable aggregate states provides the scaling the
//! paper's deployment gets from a small ScrubCentral cluster.
//!
//! Ingest runs behind the sealed [`IngestBackend`] trait: the
//! single-threaded [`InlineBackend`] is the deterministic reference, the
//! [`ThreadedBackend`] hands whole batches to partition workers over deep
//! bounded channels and merges pre-folded per-partition states at window
//! close. [`PartitionedExecutor::new`] picks the backend from the
//! partition count; [`PartitionedExecutor::stats`] snapshots every
//! observable counter in one [`ExecutorStats`].

pub mod agg;
pub mod backend;
pub mod executor;
pub mod partition;
pub mod row;
pub mod stats;
pub mod threaded;
mod totals;

pub use agg::AggState;
pub use backend::{IngestBackend, InlineBackend};
pub use executor::{HostEstimatorState, QueryExecutor, WindowPartial, MAX_JOIN_ROWS_PER_REQUEST};
pub use partition::{PartitionedExecutor, WindowClose};
pub use row::{QuerySummary, ResultRow};
pub use stats::{ExecutorStats, WorkerTime};
pub use threaded::ThreadedBackend;
