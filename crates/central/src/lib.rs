//! # scrub-central
//!
//! ScrubCentral (§4): the dedicated centralized facility where everything
//! expensive happens — tumbling-window management, the request-id
//! equi-join, group-by, and exact + probabilistic aggregation — so that
//! none of it runs on the hosts serving the application. Partitioned
//! execution with mergeable aggregate states provides the scaling the
//! paper's deployment gets from a small ScrubCentral cluster.

pub mod agg;
pub mod executor;
pub mod partition;
pub mod row;

pub use agg::AggState;
pub use executor::{HostEstimatorState, QueryExecutor, WindowPartial, MAX_JOIN_ROWS_PER_REQUEST};
pub use partition::{PartitionedExecutor, WindowClose};
pub use row::{QuerySummary, ResultRow};
