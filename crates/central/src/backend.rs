//! The sealed ingest-backend trait behind [`PartitionedExecutor`].
//!
//! `PartitionedExecutor` used to branch on `partitions == 1` inside every
//! method. The redesign makes the split explicit: an [`IngestBackend`] is
//! either the [`InlineBackend`] (single-threaded, the deterministic
//! reference every differential test compares against) or the
//! [`ThreadedBackend`](crate::threaded::ThreadedBackend) (one worker per
//! partition behind deep bounded channels). `CentralNode` and the benches
//! select a backend through one constructor —
//! [`PartitionedExecutor::new`] picks from the partition count,
//! [`PartitionedExecutor::with_backend`] accepts a pre-built one.
//!
//! The trait is sealed: the 1-vs-N equality contract (rows, summaries,
//! estimates, ledgers, trace signatures, merged profiles) is proven for
//! these two implementations, and an out-of-crate backend could not
//! uphold it against the router's merge logic.
//!
//! [`PartitionedExecutor`]: crate::PartitionedExecutor
//! [`PartitionedExecutor::new`]: crate::PartitionedExecutor::new
//! [`PartitionedExecutor::with_backend`]: crate::PartitionedExecutor::with_backend

use std::collections::HashSet;
use std::sync::Arc;

use scrub_agent::EventBatch;
use scrub_core::plan::CentralPlan;
use scrub_obs::PlanProfile;

use crate::executor::{QueryExecutor, WindowPartial};
use crate::row::{QuerySummary, ResultRow};
use crate::stats::WorkerTime;

pub(crate) mod private {
    /// Seals [`super::IngestBackend`] to this crate.
    pub trait Sealed {}
}

/// Everything one advance barrier produced: the drained stream rows,
/// closed-window partials (possibly several per window — one per
/// partition that held state for it), and the scale factor in force at
/// the barrier. The router merges partials by window, re-caps groups, and
/// renders — backends never render rows.
pub struct BackendAdvance {
    /// Stream-mode rows drained at the barrier, in partition order.
    pub stream_rows: Vec<ResultRow>,
    /// Closed windows' partial group states.
    pub partials: Vec<WindowPartial>,
    /// Sampling scale-up factor observed at the barrier (Eq. 1).
    pub scale: f64,
}

/// One of the two execution strategies under a
/// [`PartitionedExecutor`](crate::PartitionedExecutor). Sealed — see the
/// module docs.
pub trait IngestBackend: private::Sealed + Send {
    /// Partition count (1 for the inline backend).
    fn partitions(&self) -> usize;

    /// Shared handle to the compiled plan.
    fn plan_arc(&self) -> Arc<CentralPlan>;

    /// The partition an event with this request id routes to. Only
    /// request-id routed (join) plans give a per-request answer; batch
    /// round-robin plans report the partition the *next* whole-batch
    /// hand-off would take.
    fn route_partition(&self, request_id: u64) -> usize;

    /// Hand one batch to the backend. Returns the number of backpressure
    /// stalls (hand-offs that found a channel full and blocked; always 0
    /// inline).
    fn ingest(&mut self, batch: EventBatch) -> u64;

    /// Record a watermark for a tick that needs no barrier (see
    /// [`IngestBackend::needs_advance`]); the threaded backend piggybacks
    /// it on subsequent ingest hand-offs.
    fn note_watermark(&mut self, now_ms: i64);

    /// Whether advancing to `now_ms` could close a window or emit a row.
    /// `false` is a guarantee: the advance would be a no-op, so the
    /// router skips the barrier entirely (the amortized advance
    /// protocol). Conservative `true`s are allowed and merely cost a
    /// barrier.
    fn needs_advance(&self, now_ms: i64) -> bool;

    /// Barrier: drain stream rows and every window closed by `now_ms`.
    fn advance(&mut self, now_ms: i64) -> BackendAdvance;

    /// Replace the suspected-dead host set (feeds the inline executor's
    /// estimator; the threaded backend applies it at
    /// [`IngestBackend::finish_summary`] time instead, where its merged
    /// estimates are computed).
    fn set_dead_hosts(&mut self, hosts: &HashSet<String>);

    /// Produce the end-of-query summary. Fields only the router can count
    /// partition-invariantly (degraded rows, duplicates, windows emitted,
    /// groups overflow) are left 0 for it to overwrite.
    fn finish_summary(&mut self, dead_hosts: &HashSet<String>) -> QuerySummary;

    /// The backend's merged `EXPLAIN ANALYZE` profile (host ops + notes
    /// included; router-only overlays excluded).
    fn plan_profile(&self) -> PlanProfile;

    /// `(open_windows, join/group rows held)` — live for the inline
    /// backend, as of the latest barrier for the threaded one.
    fn gauges(&self) -> (usize, u64);

    /// Per-worker busy/idle attribution (empty inline).
    fn worker_times(&self) -> Vec<WorkerTime>;
}

/// `partitions == 1`: the historical sequential path, inline on the
/// caller's thread — no channels, no threads, bit-identical to the
/// pre-partitioning executor. (Boxed: the executor is much larger than
/// the threaded pool handle.)
pub struct InlineBackend {
    exec: Box<QueryExecutor>,
}

impl InlineBackend {
    /// Build the inline deterministic reference for a plan.
    pub fn new(plan: impl Into<Arc<CentralPlan>>, grace_ms: i64) -> Self {
        InlineBackend {
            exec: Box::new(QueryExecutor::new(plan, grace_ms)),
        }
    }
}

impl private::Sealed for InlineBackend {}

impl IngestBackend for InlineBackend {
    fn partitions(&self) -> usize {
        1
    }

    fn plan_arc(&self) -> Arc<CentralPlan> {
        self.exec.plan_arc()
    }

    fn route_partition(&self, _request_id: u64) -> usize {
        0
    }

    fn ingest(&mut self, batch: EventBatch) -> u64 {
        self.exec.ingest(batch);
        0
    }

    fn note_watermark(&mut self, _now_ms: i64) {}

    fn needs_advance(&self, _now_ms: i64) -> bool {
        // Advancing inline is a method call, not a barrier — nothing to
        // amortize, and unconditional advances keep this path exactly the
        // historical reference.
        true
    }

    fn advance(&mut self, now_ms: i64) -> BackendAdvance {
        let stream_rows = self.exec.advance_stream_only();
        let partials = self.exec.take_closed_partials(now_ms);
        BackendAdvance {
            stream_rows,
            partials,
            scale: self.exec.scale(),
        }
    }

    fn set_dead_hosts(&mut self, hosts: &HashSet<String>) {
        self.exec.set_dead_hosts(hosts.clone());
    }

    fn finish_summary(&mut self, _dead_hosts: &HashSet<String>) -> QuerySummary {
        // The executor already knows the dead set (set_dead_hosts
        // forwards); its finish computes estimates over the survivors.
        // The router has drained all windows before calling this, so the
        // internal advance returns no rows.
        self.exec.finish().1
    }

    fn plan_profile(&self) -> PlanProfile {
        self.exec.plan_profile()
    }

    fn gauges(&self) -> (usize, u64) {
        (
            self.exec.open_windows(),
            (self.exec.buffered_events() + self.exec.open_groups()) as u64,
        )
    }

    fn worker_times(&self) -> Vec<WorkerTime> {
        Vec::new()
    }
}
