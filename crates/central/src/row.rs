//! Query results: per-window rows and the end-of-query summary.

use serde::{Deserialize, Serialize};

use scrub_core::plan::QueryId;
use scrub_core::value::Value;
use scrub_sketch::TwoStageEstimate;

/// One result row, produced when a tumbling window closes (aggregate mode)
/// or per matching row (stream mode).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// Owning query.
    pub query_id: QueryId,
    /// Start of the tumbling window this row belongs to (ms).
    pub window_start_ms: i64,
    /// Column values, aligned with the plan's headers.
    pub values: Vec<Value>,
    /// True when the window closed while one or more targeted hosts were
    /// suspected dead: the row is still useful, but its counts can only
    /// under-report (graceful degradation, not silent bias).
    #[serde(default)]
    pub degraded: bool,
}

impl ResultRow {
    /// Render as a tab-separated line (handy for examples and benches).
    pub fn to_tsv(&self) -> String {
        let mut s = format!("{}", self.window_start_ms);
        for v in &self.values {
            s.push('\t');
            s.push_str(&v.to_string());
        }
        s
    }
}

/// End-of-query summary: totals and, when the query was a sampled
/// single-stream aggregation, the two-stage estimates with error bounds
/// (Eqs 1–3) for each eligible column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySummary {
    /// Owning query.
    pub query_id: QueryId,
    /// Number of hosts that reported at least one batch.
    pub hosts_reporting: usize,
    /// Σ M_i: matching events across reporting hosts.
    pub total_matched: u64,
    /// Σ m_i: sampled (shipped) events across reporting hosts.
    pub total_sampled: u64,
    /// Events dropped by load shedding across hosts.
    pub total_shed: u64,
    /// Events dropped by the per-host CPU budget tracker across hosts.
    #[serde(default)]
    pub total_budget_shed: u64,
    /// Windows emitted.
    pub windows_emitted: u64,
    /// Per select-column whole-span estimate with error bound, when
    /// applicable (ungrouped single-stream SUM/COUNT/AVG under sampling);
    /// `None` for other columns.
    pub estimates: Vec<Option<TwoStageEstimate>>,
    /// Hosts the query targeted (the population the coverage figure is
    /// relative to).
    #[serde(default)]
    pub hosts_targeted: usize,
    /// Targeted hosts still considered live at the end of the query.
    #[serde(default)]
    pub hosts_live: usize,
    /// Result rows emitted while some targeted host was suspected dead.
    #[serde(default)]
    pub degraded_rows: u64,
    /// Batches discarded as duplicates of an already-ingested
    /// `(host, query, seq)` (retransmissions whose ack was lost).
    #[serde(default)]
    pub duplicate_batches: u64,
    /// Rows dropped because group state hit the `max_groups` bound (the
    /// keep-smallest-keys overflow policy; partition-count invariant).
    #[serde(default)]
    pub groups_overflow: u64,
}

impl QuerySummary {
    /// Fraction of targeted hosts that stayed live (1.0 when targeting
    /// information is unavailable).
    pub fn coverage(&self) -> f64 {
        if self.hosts_targeted == 0 {
            1.0
        } else {
            self.hosts_live as f64 / self.hosts_targeted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_rendering() {
        let r = ResultRow {
            query_id: QueryId(1),
            window_start_ms: 10_000,
            values: vec![Value::Long(7), Value::Str("x".into())],
            degraded: false,
        };
        assert_eq!(r.to_tsv(), "10000\t7\t\"x\"");
    }
}
