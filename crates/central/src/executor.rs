//! Per-query execution engine of ScrubCentral (§4): tumbling windows,
//! the request-id equi-join, group-by and aggregation.
//!
//! Hosts only selected/projected/sampled; everything here is the expensive
//! part of the query, deliberately placed off the application hosts.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use scrub_agent::{BatchPayload, EventBatch};
use scrub_core::columnar::{ColumnChunk, ColumnarFrame};
use scrub_core::event::Event;
use scrub_core::expr::ResolvedExpr;
use scrub_core::plan::{CentralPlan, OperatorKind, OutputCol, OutputMode};
use scrub_core::value::{GroupKey, Value};
use scrub_obs::{OperatorStats, PlanProfile};
use scrub_sketch::{estimate_total, HostSample, Welford};

use crate::agg::AggState;
use crate::row::{QuerySummary, ResultRow};
use crate::totals::{HostId, TotalsTracker};

/// Safety cap on the per-request join cross-product (a request with tens of
/// thousands of exclusions joined to several bids could otherwise explode).
pub const MAX_JOIN_ROWS_PER_REQUEST: usize = 100_000;

/// Central-side operator counters for `EXPLAIN ANALYZE`. One partition's
/// executor counts only the (disjoint) event slice routed to it, so the
/// partitioned router merges these by summing — unlike the host-side
/// operators, which are reconstructed from the replicated batch headers
/// and merge by max. `ns` fields are wall-clock and nondeterministic;
/// everything else is integer-exact across partition counts.
///
/// Counters that are *not* partition-invariant under summation — rendered
/// group rows, windows closed (every partition closes its own copy of the
/// same window), decode bytes (sub-batch headers replicate) — are left at
/// zero here and overlaid by the router, where merged rendering actually
/// happens.
#[derive(Debug, Default, Clone, Copy)]
struct CentralOpCounters {
    /// Events arriving in ingested batches (post-dedup).
    decode_rows_in: u64,
    /// Events routed into at least one open window (not foreign, not late).
    decode_rows_out: u64,
    /// Wall-clock ingest time net of the residual/group/stream/build time
    /// accounted below.
    decode_ns: u64,
    /// Events entering the join build side (each buffered copy counted
    /// once per covering window on the way out).
    join_build_rows_in: u64,
    join_build_rows_out: u64,
    join_build_ns: u64,
    /// Buffered events consumed when a join window closes, and joined
    /// rows actually enumerated (post cross-product cap).
    join_probe_rows_in: u64,
    join_probe_rows_out: u64,
    join_probe_ns: u64,
    residual_rows_in: u64,
    residual_rows_out: u64,
    residual_ns: u64,
    /// Rows folded into group/aggregate state (one per covering window).
    group_rows_in: u64,
    group_ns: u64,
    stream_rows_in: u64,
    stream_rows_out: u64,
    stream_ns: u64,
}

/// Reusable per-executor buffers for the event hot path: the joined row
/// and the group key are rebuilt for every event, so they are cleared and
/// refilled instead of reallocated (single-key group-bys in particular
/// used to allocate a one-element `Vec<GroupKey>` per event).
#[derive(Debug, Default)]
struct EventScratch {
    row: Vec<Value>,
    keys: Vec<GroupKey>,
    key_vals: Vec<Value>,
}

/// Per-(window, group) state.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Group key values as first seen (for output).
    pub keys: Vec<Value>,
    /// One state per aggregate in the plan.
    pub aggs: Vec<AggState>,
    /// Rows folded into this group (additive across partitions; when a
    /// group is evicted by the `max_groups` cap these rows become
    /// `groups_overflow`).
    pub rows: u64,
}

enum WindowState {
    /// Single-input aggregate mode: aggregated eagerly, memory O(groups).
    /// The map is bounded at `CentralPlan::max_groups` by keeping the
    /// smallest group keys (see [`update_groups`]); `overflow_rows`
    /// counts the rows this window dropped to stay under the cap.
    Eager {
        groups: BTreeMap<Vec<GroupKey>, GroupState>,
        overflow_rows: u64,
    },
    /// Join queries buffer per request id until the window closes.
    Buffered {
        per_request: HashMap<u64, Vec<Vec<Event>>>,
    },
}

/// A closed window's partial results, for merging across partitions.
pub struct WindowPartial {
    /// Window start (ms).
    pub window_start_ms: i64,
    /// Aggregate-mode groups (empty in stream mode), sorted by key.
    pub groups: Vec<(Vec<GroupKey>, GroupState)>,
    /// Rows dropped by the `max_groups` cap while this window was open
    /// (additive across partitions; the router adds its own re-cap drops
    /// on top).
    pub overflow_rows: u64,
}

/// One host's contribution to the two-stage estimator, exported from an
/// executor so partitions can be merged: interned host ids are
/// partition-local, so the export keys on the host *name*, and the
/// per-aggregate [`Welford`] moments merge exactly (Chan et al.).
#[derive(Debug, Clone)]
pub struct HostEstimatorState {
    /// Host name (globally unique, unlike the partition-local id).
    pub host: String,
    /// `M_i`: the host's cumulative matched-event count from batch
    /// headers. Headers replicate to every partition, so cross-partition
    /// merge takes the max, mirroring the in-executor monotonic merge.
    pub matched: u64,
    /// Per-aggregate moments of the values this executor sampled (empty
    /// when the host shipped no estimator-eligible events here).
    pub moments: Vec<Welford>,
}

impl HostEstimatorState {
    /// Fold another partition's view of the same host into this one.
    pub fn merge(&mut self, other: HostEstimatorState) {
        debug_assert_eq!(self.host, other.host);
        self.matched = self.matched.max(other.matched);
        if self.moments.is_empty() {
            self.moments = other.moments;
            return;
        }
        for (i, m) in other.moments.into_iter().enumerate() {
            if let Some(dst) = self.moments.get_mut(i) {
                dst.merge(&m);
            } else {
                self.moments.push(m);
            }
        }
    }
}

/// Whether a plan's summary gets Eq 1–3 two-stage estimates: single
/// input, ungrouped aggregation, under host or event sampling.
pub fn plan_estimator_eligible(plan: &CentralPlan) -> bool {
    if plan.inputs.len() > 1 {
        return false;
    }
    let sampled = plan.sample.is_sampled()
        || (plan.host_info.matching > plan.host_info.selected && plan.host_info.selected > 0);
    if !sampled {
        return false;
    }
    matches!(
        &plan.mode,
        OutputMode::Aggregate { group_by, .. } if group_by.is_empty()
    )
}

/// Compute the per-column two-stage estimates (Eqs 1–3) from per-host
/// estimator state. `states` must be in a deterministic host order (the
/// executor exports first-seen order) — the floating-point reduction
/// order follows it.
pub fn estimates_from_states(
    plan: &CentralPlan,
    states: &[HostEstimatorState],
    dead_hosts: &std::collections::HashSet<String>,
) -> Vec<Option<scrub_sketch::TwoStageEstimate>> {
    let OutputMode::Aggregate {
        aggregates, output, ..
    } = &plan.mode
    else {
        return vec![None; plan.headers.len()];
    };
    if !plan_estimator_eligible(plan) {
        return vec![None; output.len()];
    }
    let n_total = if plan.host_info.matching > 0 {
        plan.host_info.matching
    } else {
        states.len()
    };
    output
        .iter()
        .map(|col| {
            let OutputCol::Agg(i) = col else {
                return None;
            };
            use scrub_core::ql::ast::AggFn;
            if !matches!(aggregates[*i].func, AggFn::Count | AggFn::Sum) {
                return None;
            }
            let mut hosts: Vec<HostSample> = Vec::new();
            for st in states {
                // A dead host's counters stopped at an unknown point;
                // dropping its sample shrinks n, so the two-stage bounds
                // widen instead of silently biasing (Eqs 1–3).
                if dead_hosts.contains(&st.host) {
                    continue;
                }
                let stats = st.moments.get(*i).copied().unwrap_or_default();
                hosts.push(HostSample {
                    population: st.matched,
                    stats,
                });
            }
            Some(estimate_total(n_total, &hosts, 0.95))
        })
        .collect()
}

/// Executes one compiled query at ScrubCentral.
pub struct QueryExecutor {
    /// Shared, immutable compiled plan — partitions of the same query all
    /// point at one allocation instead of deep-cloning the plan each.
    plan: Arc<CentralPlan>,
    grace_ms: i64,
    windows: BTreeMap<i64, WindowState>,
    /// Interned host names plus cumulative per-(host, subscription) header
    /// counters (see [`TotalsTracker`]). Under the batch pipeline only the
    /// component that sees every batch once holds authoritative totals:
    /// this executor when fed through [`QueryExecutor::ingest`], the
    /// router when this executor is a partition worker fed through
    /// [`QueryExecutor::ingest_routed`] (which interns but never observes
    /// headers, leaving the totals here empty).
    totals: TotalsTracker,
    /// Per-host value moments per aggregate (only for estimator-eligible
    /// queries: single input, ungrouped, sampled).
    host_moments: HashMap<HostId, Vec<Welford>>,
    /// Hot-path scratch buffers, reused across events.
    scratch: EventScratch,
    stream_out: Vec<ResultRow>,
    windows_emitted: u64,
    /// Join rows dropped by the cross-product cap.
    pub join_rows_capped: u64,
    /// Late events dropped because their window already closed.
    pub late_events_dropped: u64,
    closed_before_ms: i64,
    /// Hosts suspected dead (no heartbeat/batch within the grace period).
    /// Their already-ingested events stay, but their samples leave the
    /// estimator — the survivors' scaled estimate plus a wider bound is
    /// more honest than pretending the dead host's counters are current.
    dead_hosts: std::collections::HashSet<String>,
    /// Batches discarded as duplicate (host, query, seq) retransmissions.
    pub duplicate_batches: u64,
    /// Rows dropped by the `max_groups` bound on group state (counted at
    /// the moment they are dropped or their group is evicted).
    pub groups_overflow: u64,
    /// Central-side per-operator counters for `EXPLAIN ANALYZE`.
    opc: CentralOpCounters,
}

impl QueryExecutor {
    /// Create an executor for a central plan. `grace_ms` is how long after
    /// a window's end it stays open for stragglers. Accepts a plain plan
    /// or a shared `Arc<CentralPlan>` (partitions of one query share the
    /// compiled plan instead of cloning it).
    pub fn new(plan: impl Into<Arc<CentralPlan>>, grace_ms: i64) -> Self {
        QueryExecutor {
            plan: plan.into(),
            grace_ms,
            windows: BTreeMap::new(),
            totals: TotalsTracker::default(),
            host_moments: HashMap::new(),
            scratch: EventScratch::default(),
            stream_out: Vec::new(),
            windows_emitted: 0,
            join_rows_capped: 0,
            late_events_dropped: 0,
            closed_before_ms: i64::MIN,
            dead_hosts: std::collections::HashSet::new(),
            duplicate_batches: 0,
            groups_overflow: 0,
            opc: CentralOpCounters::default(),
        }
    }

    /// Replace the set of hosts currently suspected dead.
    pub fn set_dead_hosts(&mut self, hosts: std::collections::HashSet<String>) {
        self.dead_hosts = hosts;
    }

    /// Hosts currently suspected dead.
    pub fn dead_hosts(&self) -> &std::collections::HashSet<String> {
        &self.dead_hosts
    }

    /// The plan under execution.
    pub fn plan(&self) -> &CentralPlan {
        self.plan.as_ref()
    }

    /// Shared handle to the plan (cheap to clone across partitions).
    pub fn plan_arc(&self) -> Arc<CentralPlan> {
        Arc::clone(&self.plan)
    }

    /// Number of windows currently open (not yet past grace).
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Events currently buffered for the join (0 for single-input plans,
    /// whose windows hold aggregate state instead).
    pub fn buffered_events(&self) -> usize {
        self.windows
            .values()
            .map(|w| match w {
                WindowState::Eager { .. } => 0,
                WindowState::Buffered { per_request } => per_request
                    .values()
                    .map(|slots| slots.iter().map(Vec::len).sum::<usize>())
                    .sum(),
            })
            .sum()
    }

    /// Group states currently held across open windows.
    pub fn open_groups(&self) -> usize {
        self.windows
            .values()
            .map(|w| match w {
                WindowState::Eager { groups, .. } => groups.len(),
                WindowState::Buffered { .. } => 0,
            })
            .sum()
    }

    fn is_join(&self) -> bool {
        self.plan.inputs.len() > 1
    }

    fn estimator_eligible(&self) -> bool {
        plan_estimator_eligible(&self.plan)
    }

    /// Current scale-up factor compensating host and event sampling:
    /// `(N/n) · (ΣM_i/Σm_i)` using observed totals (Eq. 1's population
    /// scale, applied globally).
    pub fn scale(&self) -> f64 {
        self.totals.scale(&self.plan)
    }

    /// Ingest one batch from a host agent, folding the header totals here
    /// (the inline path: this executor sees every batch exactly once).
    pub fn ingest(&mut self, batch: EventBatch) {
        debug_assert_eq!(batch.query_id, self.plan.query_id);
        let hid = self.totals.observe_header(&batch);
        self.ingest_payload(hid, batch.payload);
    }

    /// Ingest a batch routed down from a partitioned router that already
    /// observed the header: the host is interned (estimator moments key on
    /// it) but the cumulative counters are *not* folded here — the router
    /// is authoritative for totals, scale, and host-side profile figures.
    pub fn ingest_routed(&mut self, batch: EventBatch) {
        debug_assert_eq!(batch.query_id, self.plan.query_id);
        let hid = self.totals.intern(&batch.host);
        self.ingest_payload(hid, batch.payload);
    }

    /// Dispatch on the wire shape: row batches walk the v1 event loop;
    /// columnar frames take the vectorized column path (falling back to
    /// materialised rows only where the plan itself wants events — join
    /// buffering and stream emission).
    fn ingest_payload(&mut self, hid: HostId, payload: BatchPayload) {
        match payload {
            BatchPayload::Rows(events) => self.ingest_events(hid, events),
            BatchPayload::Columnar(frame) => self.ingest_columnar(hid, &frame),
        }
    }

    fn ingest_events(&mut self, hid: HostId, events: Vec<Event>) {
        let t0 = Instant::now();
        // Downstream-operator ns accounted inside the loop is subtracted
        // from the decode attribution below.
        let inner_before = self.inner_op_ns();
        let eligible = self.estimator_eligible();
        // Take the scratch buffers for the duration of the batch (they
        // cannot stay borrowed through the `&mut self` calls below).
        let mut scratch = std::mem::take(&mut self.scratch);
        for ev in events {
            self.opc.decode_rows_in += 1;
            let Some(input_idx) = self.plan.input_index(ev.type_id) else {
                continue; // not part of this query
            };
            if eligible {
                self.build_row_into(&mut scratch.row, &ev, input_idx);
                self.update_moments(hid, &scratch.row);
            }
            self.ingest_event(ev, input_idx, &mut scratch);
        }
        self.scratch = scratch;
        let inner_spent = self.inner_op_ns().saturating_sub(inner_before);
        self.opc.decode_ns += (t0.elapsed().as_nanos() as u64).saturating_sub(inner_spent);
    }

    /// Ingest a columnar frame. Single-input aggregate plans consume the
    /// column slices directly — no per-event `Event` materialisation, the
    /// late-window selection reads only the timestamp column, and the
    /// residual/group passes fetch just the slots their expressions
    /// reference. Join and stream plans (and any decode failure, which
    /// in-process frames cannot hit) fall back to materialised rows and
    /// the v1 loop, so their buffering/emission semantics are untouched.
    fn ingest_columnar(&mut self, hid: HostId, frame: &ColumnarFrame) {
        let vectorize = !self.is_join() && matches!(self.plan.mode, OutputMode::Aggregate { .. });
        let t0 = Instant::now();
        let decoded = if vectorize { frame.decode().ok() } else { None };
        match decoded {
            Some(batch) => {
                let inner_before = self.inner_op_ns();
                let eligible = self.estimator_eligible();
                let mut scratch = std::mem::take(&mut self.scratch);
                for chunk in &batch.chunks {
                    self.ingest_chunk(hid, chunk, eligible, &mut scratch);
                }
                self.scratch = scratch;
                let inner_spent = self.inner_op_ns().saturating_sub(inner_before);
                self.opc.decode_ns += (t0.elapsed().as_nanos() as u64).saturating_sub(inner_spent);
            }
            None => {
                let mut rows = Vec::with_capacity(frame.len());
                let res = frame.decode_rows_into(&mut rows);
                debug_assert!(res.is_ok(), "columnar frame decode failed: {res:?}");
                // materialisation cost is decode work; the row loop times
                // itself from here
                self.opc.decode_ns += t0.elapsed().as_nanos() as u64;
                self.ingest_events(hid, rows);
            }
        }
    }

    /// Vectorized ingest of one column chunk into a single-input eager
    /// aggregate plan. Mirrors the row path pass-for-pass so every integer
    /// counter (`decode_rows_*`, `residual_rows_*`, `group_rows_in`,
    /// `late_events_dropped`, group/overflow state, estimator moments) is
    /// bit-identical to feeding the same events through
    /// [`QueryExecutor::ingest_events`].
    fn ingest_chunk(
        &mut self,
        hid: HostId,
        chunk: &ColumnChunk,
        eligible: bool,
        scratch: &mut EventScratch,
    ) {
        let n = chunk.len();
        self.opc.decode_rows_in += n as u64;
        let Some(input_idx) = self.plan.input_index(chunk.type_id) else {
            return; // not part of this query
        };
        let plan = Arc::clone(&self.plan);
        let input = &plan.inputs[input_idx];
        let off = input.block_offset;
        let nfields = input.fields.len();
        let rid_slot = off + nfields;
        let ts_slot = rid_slot + 1;
        // Slot accessor mirroring `fill_block`: projected columns first,
        // then the request-id and timestamp slots; out-of-block slots and
        // short chunks (arity < plan fields) read Null, extra trailing
        // columns are ignored — exactly the row builder's semantics.
        let col_fetch = |i: usize, slot: usize| -> Value {
            if slot >= off && slot < rid_slot {
                match chunk.columns.get(slot - off) {
                    Some(col) => col.value_at(i),
                    None => Value::Null,
                }
            } else if slot == rid_slot {
                Value::Long(chunk.request_ids[i] as i64)
            } else if slot == ts_slot {
                Value::DateTime(chunk.timestamps[i])
            } else {
                Value::Null
            }
        };
        let OutputMode::Aggregate {
            group_by,
            aggregates,
            ..
        } = &plan.mode
        else {
            unreachable!("columnar vectorization is aggregate-only");
        };

        // Estimator moments fold every arriving event of this input —
        // before late-window filtering, same as the row path.
        if eligible {
            let moments = self
                .host_moments
                .entry(hid)
                .or_insert_with(|| vec![Welford::new(); aggregates.len()]);
            for i in 0..n {
                let fetch = |slot: usize| col_fetch(i, slot);
                for (j, agg) in aggregates.iter().enumerate() {
                    let v = match &agg.arg {
                        Some(a) => a.eval_by(&fetch).as_f64(),
                        None => Some(1.0), // COUNT(*)
                    };
                    if let Some(x) = v {
                        moments[j].add(x);
                    }
                }
            }
        }

        // Selection pass over the timestamp column alone: surviving events
        // record their covering window starts in a flat arena.
        let closed = self.closed_before_ms;
        let mut wins: Vec<i64> = Vec::with_capacity(n);
        let mut sel: Vec<(u32, u32, u32)> = Vec::with_capacity(n);
        for (i, &ts) in chunk.timestamps.iter().enumerate() {
            let lo = wins.len() as u32;
            wins.extend(self.covered_windows(ts).filter(|w| *w >= closed));
            let hi = wins.len() as u32;
            if lo == hi {
                self.late_events_dropped += 1;
            } else {
                self.opc.decode_rows_out += 1;
                sel.push((i as u32, lo, hi));
            }
        }

        // Residual pass: one per-column evaluation per surviving event,
        // shrinking the selection in place.
        if let Some(res) = &plan.residual {
            let t_res = Instant::now();
            sel.retain(|&(i, _, _)| {
                self.opc.residual_rows_in += 1;
                let fetch = |slot: usize| col_fetch(i as usize, slot);
                let pass = res.eval_bool_by(&fetch);
                if pass {
                    self.opc.residual_rows_out += 1;
                }
                pass
            });
            self.opc.residual_ns += t_res.elapsed().as_nanos() as u64;
        }

        // Fold pass: group state folds straight off the columns.
        let t_fold = Instant::now();
        let cap = plan.max_groups.max(1);
        for &(i, lo, hi) in &sel {
            let fetch = |slot: usize| col_fetch(i as usize, slot);
            for &w in &wins[lo as usize..hi as usize] {
                let state = self.windows.entry(w).or_insert_with(|| WindowState::Eager {
                    groups: BTreeMap::new(),
                    overflow_rows: 0,
                });
                let WindowState::Eager {
                    groups,
                    overflow_rows,
                } = state
                else {
                    unreachable!("single-input aggregate plans are eager");
                };
                self.opc.group_rows_in += 1;
                let dropped = update_groups_with(
                    groups,
                    cap,
                    group_by,
                    aggregates,
                    &|e| e.eval_by(&fetch),
                    &mut scratch.keys,
                    &mut scratch.key_vals,
                );
                *overflow_rows += dropped;
                self.groups_overflow += dropped;
            }
        }
        self.opc.group_ns += t_fold.elapsed().as_nanos() as u64;
    }

    /// Sum of the operator ns accounted *inside* the ingest loop (used to
    /// keep decode/route from double-counting downstream time).
    fn inner_op_ns(&self) -> u64 {
        self.opc.join_build_ns + self.opc.residual_ns + self.opc.group_ns + self.opc.stream_ns
    }

    fn update_moments(&mut self, host: HostId, row: &[Value]) {
        let OutputMode::Aggregate { aggregates, .. } = &self.plan.mode else {
            return;
        };
        let moments = self
            .host_moments
            .entry(host)
            .or_insert_with(|| vec![Welford::new(); aggregates.len()]);
        for (i, agg) in aggregates.iter().enumerate() {
            let v = match &agg.arg {
                Some(a) => a.eval(row).as_f64(),
                None => Some(1.0), // COUNT(*)
            };
            if let Some(x) = v {
                moments[i].add(x);
            }
        }
    }

    /// Build the full-width joined row for a single event (other blocks
    /// stay Null — correct for single-input plans where they don't exist).
    /// Reuses `row`'s allocation across events.
    fn build_row_into(&self, row: &mut Vec<Value>, ev: &Event, input_idx: usize) {
        row.clear();
        row.resize(self.plan.row_width, Value::Null);
        self.fill_block(row, ev, input_idx);
    }

    fn fill_block(&self, row: &mut [Value], ev: &Event, input_idx: usize) {
        let input = &self.plan.inputs[input_idx];
        let off = input.block_offset;
        for (i, v) in ev.values.iter().enumerate() {
            if i < input.fields.len() {
                row[off + i] = v.clone();
            }
        }
        row[off + input.fields.len()] = Value::Long(ev.request_id.0 as i64);
        row[off + input.fields.len() + 1] = Value::DateTime(ev.timestamp);
    }

    /// Window starts covering a timestamp: every `w = k · slide` with
    /// `w <= ts < w + window`. Tumbling windows (slide == window) cover
    /// each event exactly once; a smaller slide produces overlap (§3.2's
    /// sliding-window extension).
    fn covered_windows(&self, ts: i64) -> impl Iterator<Item = i64> {
        let w = self.plan.window_ms;
        let s = self.plan.slide_ms;
        let k_min = (ts - w).div_euclid(s) + 1;
        let k_max = ts.div_euclid(s);
        (k_min..=k_max).map(move |k| k * s)
    }

    fn ingest_event(&mut self, ev: Event, input_idx: usize, scratch: &mut EventScratch) {
        let closed = self.closed_before_ms;
        let covered: Vec<i64> = self
            .covered_windows(ev.timestamp)
            .filter(|w| *w >= closed)
            .collect();
        if covered.is_empty() {
            self.late_events_dropped += 1;
            return;
        }
        self.opc.decode_rows_out += 1;
        if self.is_join() {
            let t0 = Instant::now();
            self.opc.join_build_rows_in += 1;
            self.opc.join_build_rows_out += covered.len() as u64;
            for &w in &covered {
                let state = self
                    .windows
                    .entry(w)
                    .or_insert_with(|| WindowState::Buffered {
                        per_request: HashMap::new(),
                    });
                let WindowState::Buffered { per_request } = state else {
                    unreachable!("join plans always buffer");
                };
                let slots = per_request
                    .entry(ev.request_id.0)
                    .or_insert_with(|| vec![Vec::new(); self.plan.inputs.len()]);
                slots[input_idx].push(ev.clone());
            }
            self.opc.join_build_ns += t0.elapsed().as_nanos() as u64;
            return;
        }

        // Single input. The plan handle is cheap to clone and unties the
        // plan borrow from the `self.windows` mutation below.
        let plan = Arc::clone(&self.plan);
        let t0 = Instant::now();
        match &plan.mode {
            OutputMode::Stream(exprs) => {
                self.build_row_into(&mut scratch.row, &ev, input_idx);
                self.opc.stream_rows_in += 1;
                if let Some(res) = &plan.residual {
                    self.opc.residual_rows_in += 1;
                    let pass = res.eval_bool(&scratch.row);
                    self.opc.residual_ns += t0.elapsed().as_nanos() as u64;
                    if !pass {
                        return;
                    }
                    self.opc.residual_rows_out += 1;
                }
                let t1 = Instant::now();
                let values: Vec<Value> = exprs.iter().map(|e| e.eval(&scratch.row)).collect();
                self.stream_out.push(ResultRow {
                    query_id: plan.query_id,
                    window_start_ms: *covered.last().expect("checked non-empty"),
                    values,
                    degraded: false,
                });
                self.opc.stream_rows_out += 1;
                self.opc.stream_ns += t1.elapsed().as_nanos() as u64;
            }
            OutputMode::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                self.build_row_into(&mut scratch.row, &ev, input_idx);
                if let Some(res) = &plan.residual {
                    self.opc.residual_rows_in += 1;
                    let pass = res.eval_bool(&scratch.row);
                    self.opc.residual_ns += t0.elapsed().as_nanos() as u64;
                    if !pass {
                        return;
                    }
                    self.opc.residual_rows_out += 1;
                }
                let t1 = Instant::now();
                let cap = plan.max_groups.max(1);
                for &w in &covered {
                    let state = self.windows.entry(w).or_insert_with(|| WindowState::Eager {
                        groups: BTreeMap::new(),
                        overflow_rows: 0,
                    });
                    let WindowState::Eager {
                        groups,
                        overflow_rows,
                    } = state
                    else {
                        unreachable!("single-input aggregate plans are eager");
                    };
                    self.opc.group_rows_in += 1;
                    let dropped = update_groups(
                        groups,
                        cap,
                        group_by,
                        aggregates,
                        &scratch.row,
                        &mut scratch.keys,
                        &mut scratch.key_vals,
                    );
                    *overflow_rows += dropped;
                    self.groups_overflow += dropped;
                }
                self.opc.group_ns += t1.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Advance the watermark: emit stream rows and close every window whose
    /// grace period has elapsed, returning finished result rows.
    pub fn advance(&mut self, now_ms: i64) -> Vec<ResultRow> {
        let mut out = std::mem::take(&mut self.stream_out);
        let scale = self.scale();
        for p in self.take_closed_partials(now_ms) {
            self.render_partial(p, scale, &mut out);
        }
        out
    }

    /// Close due windows and return their *partial* group states (used by
    /// the partitioned executor; aggregate mode only — stream rows still
    /// come out of [`QueryExecutor::advance_stream_only`]).
    pub fn take_closed_partials(&mut self, now_ms: i64) -> Vec<WindowPartial> {
        let cutoff = now_ms
            .saturating_sub(self.plan.window_ms)
            .saturating_sub(self.grace_ms);
        let mut due: Vec<i64> = self
            .windows
            .keys()
            .copied()
            .filter(|w| *w <= cutoff)
            .collect();
        due.sort_unstable();
        let mut out = Vec::new();
        for w in due {
            let state = self.windows.remove(&w).expect("key just listed");
            out.push(self.close_window(w, state));
            // every window with start <= w is now closed; the next open one
            // starts one slide later
            self.closed_before_ms = self.closed_before_ms.max(w + self.plan.slide_ms);
        }
        out
    }

    /// Drain stream-mode rows without touching windows.
    pub fn advance_stream_only(&mut self) -> Vec<ResultRow> {
        std::mem::take(&mut self.stream_out)
    }

    fn close_window(&mut self, w: i64, state: WindowState) -> WindowPartial {
        let mut groups_out: Vec<(Vec<GroupKey>, GroupState)> = Vec::new();
        let mut stream_rows: Vec<ResultRow> = Vec::new();
        let mut capped = 0u64;
        let mut overflow_rows = 0u64;
        match state {
            WindowState::Eager {
                groups,
                overflow_rows: of,
            } => {
                overflow_rows = of;
                groups_out.extend(groups);
            }
            WindowState::Buffered { per_request } => {
                let t_close = Instant::now();
                // downstream time accounted inside the combo loop, carved
                // out of the probe attribution at the end
                let mut res_ns = 0u64;
                let mut fold_ns = 0u64;
                let OutputModeRef {
                    group_by,
                    aggregates,
                    stream,
                } = mode_ref(&self.plan.mode);
                let cap = self.plan.max_groups.max(1);
                let mut groups: BTreeMap<Vec<GroupKey>, GroupState> = BTreeMap::new();
                let mut scratch = EventScratch::default();
                let mut row = vec![Value::Null; self.plan.row_width];
                let mut req_ids: Vec<u64> = per_request.keys().copied().collect();
                req_ids.sort_unstable();
                self.opc.join_probe_rows_in += per_request
                    .values()
                    .map(|slots| slots.iter().map(Vec::len).sum::<usize>() as u64)
                    .sum::<u64>();
                for rid in req_ids {
                    let slots = &per_request[&rid];
                    // inner join: every input must have at least one event
                    if slots.iter().any(Vec::is_empty) {
                        continue;
                    }
                    let total: usize = slots.iter().map(Vec::len).product();
                    let emit = total.min(MAX_JOIN_ROWS_PER_REQUEST);
                    capped += (total - emit) as u64;
                    self.opc.join_probe_rows_out += emit as u64;
                    let mut combo = vec![0usize; slots.len()];
                    for _ in 0..emit {
                        // reuse one row buffer across the cross-product
                        for v in row.iter_mut() {
                            *v = Value::Null;
                        }
                        for (i, slot) in slots.iter().enumerate() {
                            self.fill_block(&mut row, &slot[combo[i]], i);
                        }
                        let passes = match self.plan.residual.as_ref() {
                            Some(r) => {
                                let t_res = Instant::now();
                                self.opc.residual_rows_in += 1;
                                let ok = r.eval_bool(&row);
                                res_ns += t_res.elapsed().as_nanos() as u64;
                                if ok {
                                    self.opc.residual_rows_out += 1;
                                }
                                ok
                            }
                            None => true,
                        };
                        if passes {
                            let t_fold = Instant::now();
                            if let Some(exprs) = stream {
                                let values: Vec<Value> =
                                    exprs.iter().map(|e| e.eval(&row)).collect();
                                stream_rows.push(ResultRow {
                                    query_id: self.plan.query_id,
                                    window_start_ms: w,
                                    values,
                                    degraded: false,
                                });
                                self.opc.stream_rows_in += 1;
                                self.opc.stream_rows_out += 1;
                            } else {
                                self.opc.group_rows_in += 1;
                                let dropped = update_groups(
                                    &mut groups,
                                    cap,
                                    group_by,
                                    aggregates,
                                    &row,
                                    &mut scratch.keys,
                                    &mut scratch.key_vals,
                                );
                                overflow_rows += dropped;
                                self.groups_overflow += dropped;
                            }
                            fold_ns += t_fold.elapsed().as_nanos() as u64;
                        }
                        // advance the mixed-radix combination counter
                        for i in (0..combo.len()).rev() {
                            combo[i] += 1;
                            if combo[i] < slots[i].len() {
                                break;
                            }
                            combo[i] = 0;
                        }
                    }
                }
                groups_out.extend(groups);
                self.opc.residual_ns += res_ns;
                if stream.is_some() {
                    self.opc.stream_ns += fold_ns;
                } else {
                    self.opc.group_ns += fold_ns;
                }
                self.opc.join_probe_ns += (t_close.elapsed().as_nanos() as u64)
                    .saturating_sub(res_ns)
                    .saturating_sub(fold_ns);
            }
        }
        self.stream_out.extend(stream_rows);
        self.join_rows_capped += capped;
        // groups_out came out of a BTreeMap, so it is already key-sorted
        WindowPartial {
            window_start_ms: w,
            groups: groups_out,
            overflow_rows,
        }
    }

    /// Render a closed window's partial into final result rows.
    pub fn render_partial(&mut self, p: WindowPartial, scale: f64, out: &mut Vec<ResultRow>) {
        let OutputMode::Aggregate { output, .. } = &self.plan.mode else {
            return; // stream rows were already emitted
        };
        let had_groups = !p.groups.is_empty();
        for (_key, g) in p.groups {
            let values: Vec<Value> = output
                .iter()
                .map(|col| match col {
                    OutputCol::Group(i) => g.keys.get(*i).cloned().unwrap_or(Value::Null),
                    OutputCol::Agg(i) => g.aggs[*i].finish(scale),
                })
                .collect();
            out.push(ResultRow {
                query_id: self.plan.query_id,
                window_start_ms: p.window_start_ms,
                values,
                degraded: false,
            });
        }
        if had_groups {
            self.windows_emitted += 1;
        }
    }

    /// Close everything and produce the end-of-query summary.
    pub fn finish(&mut self) -> (Vec<ResultRow>, QuerySummary) {
        let rows = self.advance(i64::MAX / 4);
        let (total_matched, total_sampled, total_shed, total_budget_shed) = self.totals.sums();
        let estimates = self.compute_estimates();
        let summary = QuerySummary {
            query_id: self.plan.query_id,
            hosts_reporting: self.totals.hosts_reporting(),
            total_matched,
            total_sampled,
            total_shed,
            total_budget_shed,
            windows_emitted: self.windows_emitted,
            estimates,
            hosts_targeted: self.plan.host_info.selected,
            hosts_live: self.totals.hosts_live(&self.dead_hosts),
            degraded_rows: 0,
            duplicate_batches: self.duplicate_batches,
            groups_overflow: self.groups_overflow,
        };
        (rows, summary)
    }

    /// Export this executor's per-host estimator state (host-name keyed,
    /// in first-seen host order so the floating-point reduction order is
    /// deterministic). Partitions of one query export independently and
    /// the router merges by host name — see
    /// [`HostEstimatorState::merge`].
    ///
    /// Hosts appear if they contributed header totals *or* moments: a
    /// partition worker fed through [`QueryExecutor::ingest_routed`] holds
    /// moments but no totals (the router is authoritative for `matched`
    /// there), so the export must not key on totals alone.
    pub fn export_estimator_state(&self) -> Vec<HostEstimatorState> {
        let mut per_host = self.totals.per_host_matched();
        for h in self.host_moments.keys() {
            per_host.entry(*h).or_insert(0);
        }
        per_host
            .into_iter()
            .map(|(h, matched)| HostEstimatorState {
                host: self.totals.name(h).to_string(),
                matched,
                moments: self.host_moments.get(&h).cloned().unwrap_or_default(),
            })
            .collect()
    }

    fn compute_estimates(&self) -> Vec<Option<scrub_sketch::TwoStageEstimate>> {
        estimates_from_states(&self.plan, &self.export_estimator_state(), &self.dead_hosts)
    }

    /// The central-side operator skeleton with this executor's wall-clock
    /// counters filled in — host-side operators and notes left empty.
    /// This is what partition workers return from the profile barrier:
    /// central ops count only the (disjoint) event slice routed to each
    /// worker and merge by summing, while host ops and notes derive from
    /// header totals the workers never observe — the router overlays those
    /// from its own `TotalsTracker`.
    pub fn plan_profile_partial(&self) -> PlanProfile {
        let mut profile = PlanProfile {
            query_id: self.plan.query_id.0,
            ops: Vec::new(),
            notes: Vec::new(),
        };
        for desc in self.plan.operators() {
            let mut op = OperatorStats {
                id: desc.id.0,
                label: desc.label.clone(),
                host_side: desc.host_side,
                merge_max: desc.host_side,
                est_selectivity: desc.est_selectivity,
                ..Default::default()
            };
            match desc.kind {
                OperatorKind::Selection | OperatorKind::Sampling | OperatorKind::Projection => {}
                OperatorKind::Decode => {
                    op.rows_in = self.opc.decode_rows_in;
                    op.rows_out = self.opc.decode_rows_out;
                    op.ns = self.opc.decode_ns;
                }
                OperatorKind::JoinBuild => {
                    op.rows_in = self.opc.join_build_rows_in;
                    op.rows_out = self.opc.join_build_rows_out;
                    op.ns = self.opc.join_build_ns;
                }
                OperatorKind::JoinProbe => {
                    op.rows_in = self.opc.join_probe_rows_in;
                    op.rows_out = self.opc.join_probe_rows_out;
                    op.ns = self.opc.join_probe_ns;
                }
                OperatorKind::Residual => {
                    op.rows_in = self.opc.residual_rows_in;
                    op.rows_out = self.opc.residual_rows_out;
                    op.ns = self.opc.residual_ns;
                }
                OperatorKind::GroupAgg => {
                    op.rows_in = self.opc.group_rows_in;
                    op.ns = self.opc.group_ns;
                }
                OperatorKind::WindowClose => {}
                OperatorKind::Stream => {
                    op.rows_in = self.opc.stream_rows_in;
                    op.rows_out = self.opc.stream_rows_out;
                    op.ns = self.opc.stream_ns;
                }
            }
            profile.ops.push(op);
        }
        profile
    }

    /// Assemble this executor's full `EXPLAIN ANALYZE` profile.
    ///
    /// Host-side operators are reconstructed *deterministically* from the
    /// cumulative batch-header counters through the agent's `CostModel`
    /// — the paper's host agents never time their own hot path (that
    /// would be overhead), so central attributes host ns from the same
    /// model that the ≤2.5 % CPU envelope is audited against. Central
    /// operators report the wall-clock counters accumulated above.
    ///
    /// Counters that are not partition-invariant (rendered rows, windows
    /// closed, decode bytes) stay zero here; the partitioned router
    /// overlays them after merging — see `CentralOpCounters`.
    pub fn plan_profile(&self) -> PlanProfile {
        let mut profile = self.plan_profile_partial();
        self.totals.fill_host_ops(&self.plan, &mut profile);
        profile.notes = self.totals.profile_notes(&self.plan);
        profile
    }
}

struct OutputModeRef<'a> {
    group_by: &'a [scrub_core::expr::ResolvedExpr],
    aggregates: &'a [scrub_core::plan::AggSpec],
    stream: Option<&'a [scrub_core::expr::ResolvedExpr]>,
}

fn mode_ref(mode: &OutputMode) -> OutputModeRef<'_> {
    match mode {
        OutputMode::Stream(exprs) => OutputModeRef {
            group_by: &[],
            aggregates: &[],
            stream: Some(exprs),
        },
        OutputMode::Aggregate {
            group_by,
            aggregates,
            ..
        } => OutputModeRef {
            group_by,
            aggregates,
            stream: None,
        },
    }
}

/// Fold one row into the group map, holding it to at most `cap` groups.
/// Returns the number of rows dropped by the bound (0 when the row was
/// folded without evicting anything).
///
/// The overflow policy keeps the `cap` *smallest* group keys: a new key
/// larger than the current maximum is rejected outright (its row is
/// dropped), and a new key smaller than the maximum evicts the largest
/// group (all rows already folded into it count as dropped). The policy
/// is deterministic in the key values alone — arrival order never
/// matters, and a key's rank in any subset of the keys is at most its
/// global rank, so the kept set and the *total* dropped-row count are
/// identical whether the rows pass through one executor or are split
/// across N partitions and re-capped at the merge.
///
/// `keys`/`key_vals` are caller-owned scratch: the group key is built
/// into them and only cloned into the map when a *new* group appears, so
/// the steady state (existing groups — single-key group-bys especially)
/// allocates nothing for the key.
fn update_groups(
    groups: &mut BTreeMap<Vec<GroupKey>, GroupState>,
    cap: usize,
    group_by: &[ResolvedExpr],
    aggregates: &[scrub_core::plan::AggSpec],
    row: &[Value],
    keys: &mut Vec<GroupKey>,
    key_vals: &mut Vec<Value>,
) -> u64 {
    update_groups_with(
        groups,
        cap,
        group_by,
        aggregates,
        &|e| e.eval(row),
        keys,
        key_vals,
    )
}

/// [`update_groups`] behind an expression evaluator instead of a
/// materialised row — the columnar fold pass plugs in a column-slot
/// accessor here and skips row building entirely.
fn update_groups_with(
    groups: &mut BTreeMap<Vec<GroupKey>, GroupState>,
    cap: usize,
    group_by: &[ResolvedExpr],
    aggregates: &[scrub_core::plan::AggSpec],
    eval: &dyn Fn(&ResolvedExpr) -> Value,
    keys: &mut Vec<GroupKey>,
    key_vals: &mut Vec<Value>,
) -> u64 {
    keys.clear();
    key_vals.clear();
    for g in group_by {
        let v = eval(g);
        keys.push(v.group_key());
        key_vals.push(v);
    }
    let mut dropped = 0u64;
    // Lookup borrows the scratch as a slice (`Vec<GroupKey>: Borrow<[GroupKey]>`).
    if !groups.contains_key(keys.as_slice()) {
        if groups.len() >= cap {
            let new_is_largest = groups
                .last_key_value()
                .map(|(k, _)| k.as_slice() < keys.as_slice())
                .unwrap_or(false);
            if new_is_largest || cap == 0 {
                // the new key ranks past the cap — drop this row
                return 1;
            }
            // the new key displaces the current largest group
            let (_, evicted) = groups.pop_last().expect("len >= cap >= 1");
            dropped += evicted.rows;
        }
        groups.insert(
            keys.clone(),
            GroupState {
                keys: key_vals.clone(),
                aggs: aggregates.iter().map(AggState::new).collect(),
                rows: 0,
            },
        );
    }
    let entry = groups
        .get_mut(keys.as_slice())
        .expect("group just ensured present");
    entry.rows += 1;
    for (i, agg) in aggregates.iter().enumerate() {
        let v = agg.arg.as_ref().map(eval);
        entry.aggs[i].update(v.as_ref());
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::RequestId;
    use scrub_core::plan::{compile, HostSampleInfo, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new(
                "impression",
                vec![
                    FieldDef::new("line_item_id", FieldType::Long),
                    FieldDef::new("cost", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg
    }

    fn executor(src: &str) -> QueryExecutor {
        let spec = parse_query(src).unwrap();
        let cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(9)).unwrap();
        QueryExecutor::new(cq.central, 0)
    }

    /// Shorthand: feed projected events for the "bid" single-type plans.
    /// `fields` must already match the plan's projection.
    fn batch(host: &str, events: Vec<Event>, matched: u64, sampled: u64) -> EventBatch {
        let type_id = events.first().map(|e| e.type_id).unwrap_or(EventTypeId(0));
        EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(9),
            type_id,
            host: host.into(),
            payload: BatchPayload::Rows(events),
            matched,
            sampled,
            shed: 0,
            budget_shed: 0,
            seen: matched,
            bytes: 0,
            spans: vec![],
        }
    }

    fn ev(type_id: u32, rid: u64, ts: i64, values: Vec<Value>) -> Event {
        Event::new(EventTypeId(type_id), RequestId(rid), ts, values)
    }

    #[test]
    fn grouped_count_per_window() {
        // spam query: count bids per user per 10s window
        let mut ex =
            executor("select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s");
        let events = vec![
            ev(0, 1, 1_000, vec![Value::Long(7)]),
            ev(0, 2, 2_000, vec![Value::Long(7)]),
            ev(0, 3, 3_000, vec![Value::Long(8)]),
            ev(0, 4, 12_000, vec![Value::Long(7)]), // next window
        ];
        ex.ingest(batch("h1", events, 4, 4));
        let rows = ex.advance(40_000);
        assert_eq!(rows.len(), 3);
        let w0: Vec<&ResultRow> = rows.iter().filter(|r| r.window_start_ms == 0).collect();
        assert_eq!(w0.len(), 2);
        let user7 = w0.iter().find(|r| r.values[0] == Value::Long(7)).unwrap();
        assert_eq!(user7.values[1], Value::Long(2));
        let w1: Vec<&ResultRow> = rows
            .iter()
            .filter(|r| r.window_start_ms == 10_000)
            .collect();
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].values, vec![Value::Long(7), Value::Long(1)]);
    }

    #[test]
    fn windows_respect_grace() {
        let spec = parse_query("select COUNT(*) from bid window 10 s").unwrap();
        let cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(9)).unwrap();
        let mut ex = QueryExecutor::new(cq.central, 2_000);
        ex.ingest(batch("h1", vec![ev(0, 1, 5_000, vec![])], 1, 1));
        // window [0,10s) closes at 10s + grace 2s
        assert!(ex.advance(11_000).is_empty());
        let rows = ex.advance(12_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Value::Long(1)]);
    }

    #[test]
    fn late_events_dropped_after_close() {
        let mut ex = executor("select COUNT(*) from bid window 10 s");
        ex.ingest(batch("h1", vec![ev(0, 1, 5_000, vec![])], 1, 1));
        let _ = ex.advance(60_000); // closes window 0
        ex.ingest(batch("h1", vec![ev(0, 2, 6_000, vec![])], 2, 2));
        assert_eq!(ex.late_events_dropped, 1);
        assert!(ex.advance(120_000).is_empty());
    }

    #[test]
    fn stream_mode_emits_rows_immediately() {
        let mut ex = executor("select bid.user_id from bid where bid.price > 0.0");
        // host plan would filter, but central stream path just projects
        ex.ingest(batch(
            "h1",
            vec![ev(0, 1, 500, vec![Value::Long(42)])],
            1,
            1,
        ));
        let rows = ex.advance_stream_only();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Value::Long(42)]);
    }

    #[test]
    fn equijoin_on_request_id() {
        // join bid and impression; count joined rows per window
        let mut ex =
            executor("select COUNT(*) from bid, impression where bid.price > 0.0 window 10 s");
        // bid plan projects [price] (input 0), impression projects [] (input 1)
        let bids = vec![
            ev(0, 100, 1_000, vec![Value::Double(1.0)]),
            ev(0, 101, 2_000, vec![Value::Double(2.0)]),
        ];
        let imps = vec![
            ev(1, 100, 1_500, vec![]),
            ev(1, 100, 1_600, vec![]), // second impression, same request
            ev(1, 999, 3_000, vec![]), // unmatched request
        ];
        ex.ingest(batch("h1", bids, 2, 2));
        ex.ingest(batch("h2", imps, 3, 3));
        let rows = ex.advance(60_000);
        assert_eq!(rows.len(), 1);
        // request 100: 1 bid × 2 impressions = 2 joined rows; 101 and 999
        // have no partner
        assert_eq!(rows[0].values, vec![Value::Long(2)]);
    }

    #[test]
    fn join_cross_product_capped() {
        let mut ex = executor("select COUNT(*) from bid, impression window 10 s");
        let bids: Vec<Event> = (0..400).map(|i| ev(0, 7, 1_000 + i, vec![])).collect();
        let imps: Vec<Event> = (0..400).map(|i| ev(1, 7, 1_000 + i, vec![])).collect();
        ex.ingest(batch("h1", bids, 400, 400));
        ex.ingest(batch("h2", imps, 400, 400));
        let rows = ex.advance(60_000);
        // 160k combos capped at 100k
        assert_eq!(
            rows[0].values,
            vec![Value::Long(MAX_JOIN_ROWS_PER_REQUEST as i64)]
        );
        assert_eq!(
            ex.join_rows_capped,
            400 * 400 - MAX_JOIN_ROWS_PER_REQUEST as u64
        );
    }

    #[test]
    fn cross_type_residual_filters_joined_rows() {
        let mut ex = executor(
            "select COUNT(*) from bid, impression \
             where bid.user_id = impression.line_item_id window 10 s",
        );
        ex.ingest(batch(
            "h1",
            vec![ev(0, 1, 1_000, vec![Value::Long(5)])],
            1,
            1,
        ));
        ex.ingest(batch(
            "h2",
            vec![
                ev(1, 1, 1_100, vec![Value::Long(5)]),
                ev(1, 1, 1_200, vec![Value::Long(6)]),
            ],
            2,
            2,
        ));
        let rows = ex.advance(60_000);
        assert_eq!(rows[0].values, vec![Value::Long(1)]);
    }

    #[test]
    fn scaling_compensates_sampling() {
        let spec = parse_query("select COUNT(*) from bid sample events 10% window 10 s").unwrap();
        let mut cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(9)).unwrap();
        cq.central.host_info = HostSampleInfo {
            matching: 1,
            selected: 1,
        };
        let mut ex = QueryExecutor::new(cq.central, 0);
        // host matched 1000 events, sampled 100
        let events: Vec<Event> = (0..100).map(|i| ev(0, i, 1_000, vec![])).collect();
        ex.ingest(batch("h1", events, 1000, 100));
        let rows = ex.advance(60_000);
        assert_eq!(rows[0].values, vec![Value::Double(1000.0)]);
    }

    #[test]
    fn host_sampling_scale_up() {
        let spec = parse_query("select COUNT(*) from bid window 10 s sample hosts 50%").unwrap();
        let mut cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(9)).unwrap();
        cq.central.host_info = HostSampleInfo {
            matching: 10,
            selected: 5,
        };
        let mut ex = QueryExecutor::new(cq.central, 0);
        for h in 0..5 {
            let events: Vec<Event> = (0..10).map(|i| ev(0, h * 100 + i, 1_000, vec![])).collect();
            ex.ingest(batch(&format!("h{h}"), events, 10, 10));
        }
        let rows = ex.advance(60_000);
        // 50 observed, scaled ×2 for the unobserved half of the fleet
        assert_eq!(rows[0].values, vec![Value::Double(100.0)]);
    }

    #[test]
    fn summary_carries_totals_and_estimates() {
        let spec =
            parse_query("select SUM(bid.price) from bid sample events 50% window 10 s").unwrap();
        let mut cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(9)).unwrap();
        cq.central.host_info = HostSampleInfo {
            matching: 3,
            selected: 3,
        };
        let mut ex = QueryExecutor::new(cq.central, 0);
        for h in 0..3 {
            let events: Vec<Event> = (0..50)
                .map(|i| ev(0, i, 1_000, vec![Value::Double(2.0)]))
                .collect();
            ex.ingest(batch(&format!("h{h}"), events, 100, 50));
        }
        let (_rows, summary) = ex.finish();
        assert_eq!(summary.hosts_reporting, 3);
        assert_eq!(summary.total_matched, 300);
        assert_eq!(summary.total_sampled, 150);
        let est = summary.estimates[0].expect("SUM estimate present");
        // each host: (100/50) * 50*2.0 = 200; N/n = 1 → 600
        assert!((est.estimate - 600.0).abs() < 1e-9);
        assert!(est.error_bound.is_finite());
    }

    #[test]
    fn no_estimates_for_grouped_queries() {
        let mut ex = executor(
            "select bid.user_id, COUNT(*) from bid group by bid.user_id sample events 50%",
        );
        ex.ingest(batch("h1", vec![ev(0, 1, 0, vec![Value::Long(1)])], 2, 1));
        let (_, summary) = ex.finish();
        assert!(summary.estimates.iter().all(Option::is_none));
    }

    #[test]
    fn unsampled_query_reports_exact_counts_no_scaling() {
        let mut ex = executor("select COUNT(*) from bid window 10 s");
        ex.ingest(batch(
            "h1",
            vec![ev(0, 1, 0, vec![]), ev(0, 2, 1, vec![])],
            2,
            2,
        ));
        let rows = ex.advance(60_000);
        assert_eq!(rows[0].values, vec![Value::Long(2)]);
    }

    #[test]
    fn avg_min_max_pipeline() {
        let mut ex =
            executor("select AVG(bid.price), MIN(bid.price), MAX(bid.price) from bid window 10 s");
        let events = vec![
            ev(0, 1, 0, vec![Value::Double(1.0)]),
            ev(0, 2, 1, vec![Value::Double(3.0)]),
            ev(0, 3, 2, vec![Value::Double(2.0)]),
        ];
        ex.ingest(batch("h1", events, 3, 3));
        let rows = ex.advance(60_000);
        assert_eq!(
            rows[0].values,
            vec![Value::Double(2.0), Value::Double(1.0), Value::Double(3.0)]
        );
    }

    #[test]
    fn foreign_event_types_ignored() {
        let mut ex = executor("select COUNT(*) from bid window 10 s");
        ex.ingest(batch("h1", vec![ev(55, 1, 0, vec![])], 1, 1));
        assert!(ex.advance(60_000).is_empty());
    }
}

#[cfg(test)]
mod sliding_tests {
    use super::*;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::RequestId;
    use scrub_core::plan::{compile, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new("bid", vec![FieldDef::new("user_id", FieldType::Long)]).unwrap(),
        )
        .unwrap();
        reg
    }

    fn sliding_executor(src: &str) -> QueryExecutor {
        let spec = parse_query(src).unwrap();
        let cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(3)).unwrap();
        QueryExecutor::new(cq.central, 0)
    }

    fn one(ts: i64) -> EventBatch {
        EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(3),
            type_id: EventTypeId(0),
            host: "h".into(),
            payload: BatchPayload::Rows(vec![Event::new(
                EventTypeId(0),
                RequestId(ts as u64),
                ts,
                vec![Value::Long(1)],
            )]),
            matched: 1,
            sampled: 1,
            shed: 0,
            budget_shed: 0,
            seen: 1,
            bytes: 0,
            spans: vec![],
        }
    }

    #[test]
    fn event_lands_in_every_covering_window() {
        // window 10 s, slide 2 s: an event at t=9s covers starts 0,2,4,6,8
        let mut ex = sliding_executor("select COUNT(*) from bid window 10 s slide 2 s");
        ex.ingest(one(9_000));
        let rows = ex.advance(120_000);
        let starts: Vec<i64> = rows.iter().map(|r| r.window_start_ms).collect();
        assert_eq!(starts, vec![0, 2_000, 4_000, 6_000, 8_000]);
        assert!(rows.iter().all(|r| r.values == vec![Value::Long(1)]));
    }

    #[test]
    fn sliding_counts_overlap_correctly() {
        // events at 1s and 11s; window 10s slide 5s
        // starts covering 1s: {-5s, 0s}; covering 11s: {5s, 10s}
        let mut ex = sliding_executor("select COUNT(*) from bid window 10 s slide 5 s");
        ex.ingest(one(1_000));
        ex.ingest(one(11_000));
        let rows = ex.advance(120_000);
        let by_start: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r.window_start_ms, r.values[0].as_i64().unwrap()))
            .collect();
        assert_eq!(by_start, vec![(-5_000, 1), (0, 1), (5_000, 1), (10_000, 1)]);
    }

    #[test]
    fn tumbling_unchanged_by_slide_machinery() {
        let mut ex = sliding_executor("select COUNT(*) from bid window 10 s");
        ex.ingest(one(9_000));
        ex.ingest(one(10_000));
        let rows = ex.advance(120_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].window_start_ms, 0);
        assert_eq!(rows[1].window_start_ms, 10_000);
    }

    #[test]
    fn windows_close_in_slide_order() {
        let mut ex = sliding_executor("select COUNT(*) from bid window 10 s slide 5 s");
        ex.ingest(one(7_000)); // covers starts 0 and 5s
                               // at t=21s, window 0 (ends 10s) and window 5s (ends 15s) have closed
        let rows = ex.advance(21_000);
        assert_eq!(rows.len(), 2);
        // a late event for start 0 is dropped, but start 15s+ still open
        ex.ingest(one(9_000)); // covers 0 and 5s — both closed
        assert_eq!(ex.late_events_dropped, 1);
        ex.ingest(one(20_000)); // covers 15s and 20s — open
        let rows = ex.advance(i64::MAX / 4);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn slide_larger_than_window_rejected_at_planning() {
        let spec = parse_query("select COUNT(*) from bid window 5 s slide 10 s").unwrap();
        let err = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(1)).unwrap_err();
        assert!(err.to_string().contains("slide"));
    }

    #[test]
    fn sliding_join_replicates_pairs() {
        let reg = SchemaRegistry::new();
        reg.register(EventSchema::new("a", vec![FieldDef::new("x", FieldType::Long)]).unwrap())
            .unwrap();
        reg.register(EventSchema::new("b", vec![FieldDef::new("y", FieldType::Long)]).unwrap())
            .unwrap();
        let spec = parse_query("select COUNT(*) from a, b window 10 s slide 5 s").unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(4)).unwrap();
        let mut ex = QueryExecutor::new(cq.central, 0);
        let mk = |t: u32, ts: i64| EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(4),
            type_id: EventTypeId(t),
            host: "h".into(),
            payload: BatchPayload::Rows(vec![Event::new(EventTypeId(t), RequestId(7), ts, vec![])]),
            matched: 1,
            sampled: 1,
            shed: 0,
            budget_shed: 0,
            seen: 1,
            bytes: 0,
            spans: vec![],
        };
        ex.ingest(mk(0, 6_000));
        ex.ingest(mk(1, 7_000));
        let rows = ex.advance(i64::MAX / 4);
        // both events covered by windows starting at 0 and 5s -> the pair
        // joins in both
        let counts: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r.window_start_ms, r.values[0].as_i64().unwrap()))
            .collect();
        assert_eq!(counts, vec![(0, 1), (5_000, 1)]);
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::RequestId;
    use scrub_core::plan::{compile, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn join_executor() -> QueryExecutor {
        let reg = SchemaRegistry::new();
        reg.register(EventSchema::new("a", vec![FieldDef::new("x", FieldType::Long)]).unwrap())
            .unwrap();
        reg.register(EventSchema::new("b", vec![]).unwrap())
            .unwrap();
        let spec = parse_query("select COUNT(*) from a, b window 10 s").unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();
        QueryExecutor::new(cq.central, 0)
    }

    #[test]
    fn join_buffers_drain_when_windows_close() {
        let mut ex = join_executor();
        // stream events across 10 windows, advancing the watermark as we go
        for w in 0..10i64 {
            let ts = w * 10_000 + 500;
            for i in 0..50u64 {
                ex.ingest(EventBatch {
                    seq: 0,
                    attempt: 0,
                    query_id: QueryId(1),
                    type_id: EventTypeId(0),
                    host: "h1".into(),
                    payload: BatchPayload::Rows(vec![Event::new(
                        EventTypeId(0),
                        RequestId(w as u64 * 100 + i),
                        ts,
                        vec![Value::Long(i as i64)],
                    )]),
                    matched: 1,
                    sampled: 1,
                    shed: 0,
                    budget_shed: 0,
                    seen: 1,
                    bytes: 0,
                    spans: vec![],
                });
            }
            let _ = ex.advance(ts);
            // memory stays bounded: only windows within grace remain
            assert!(
                ex.open_windows() <= 3,
                "windows accumulating: {} at w={w}",
                ex.open_windows()
            );
            assert!(ex.buffered_events() <= 3 * 50);
        }
        // closing everything leaves no residue
        let _ = ex.advance(i64::MAX / 4);
        assert_eq!(ex.open_windows(), 0);
        assert_eq!(ex.buffered_events(), 0);
    }

    #[test]
    fn eager_groups_drain_too() {
        let reg = SchemaRegistry::new();
        reg.register(EventSchema::new("a", vec![FieldDef::new("x", FieldType::Long)]).unwrap())
            .unwrap();
        let spec = parse_query("select a.x, COUNT(*) from a group by a.x window 10 s").unwrap();
        let cq = compile(&spec, &reg, &ScrubConfig::default(), QueryId(1)).unwrap();
        let mut ex = QueryExecutor::new(cq.central, 0);
        for w in 0..5i64 {
            let ts = w * 10_000 + 1;
            ex.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(1),
                type_id: EventTypeId(0),
                host: "h1".into(),
                payload: BatchPayload::Rows(
                    (0..100)
                        .map(|i| {
                            Event::new(
                                EventTypeId(0),
                                RequestId(i),
                                ts,
                                vec![Value::Long(i as i64)],
                            )
                        })
                        .collect(),
                ),
                matched: 100,
                sampled: 100,
                shed: 0,
                budget_shed: 0,
                seen: 100,
                bytes: 0,
                spans: vec![],
            });
            let _ = ex.advance(ts);
            assert!(ex.open_groups() <= 3 * 100);
        }
        let _ = ex.advance(i64::MAX / 4);
        assert_eq!(ex.open_groups(), 0);
    }
}
