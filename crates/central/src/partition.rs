//! Partitioned execution inside ScrubCentral.
//!
//! A single query at Turn's scale can ingest events from thousands of
//! hosts; ScrubCentral therefore shards a query's work across partitions.
//! Each partition runs an independent [`QueryExecutor`](crate::QueryExecutor)
//! and folds its own
//! group/window state; when a window closes, per-partition *partial*
//! aggregate states are merged by group key — every
//! [`AggState`](crate::agg::AggState) is mergeable for exactly this
//! reason.
//!
//! The execution strategy lives behind the sealed
//! [`IngestBackend`] trait:
//!
//! * [`InlineBackend`] (`partitions == 1`) runs on the caller's thread —
//!   no channels, no threads, bit-identical to the historical sequential
//!   path. This is the deterministic reference all differential tests
//!   compare against.
//! * [`ThreadedBackend`]
//!   (`partitions >= 2`) hands whole batches to per-partition worker
//!   threads over deep bounded channels, with router-side header
//!   accounting, pre-folded two-phase aggregation, and an amortized
//!   advance protocol that only pays the cross-partition barrier when a
//!   window is actually due — see the `threaded` module docs.
//!
//! This router owns everything that must be partition-count-invariant:
//! it observes each batch exactly once (events routed, bytes decoded),
//! merges and re-caps closed windows' group states, renders result rows,
//! marks degradation, and overlays the merged `EXPLAIN ANALYZE` profile.
//! Its observability surface is one call: [`PartitionedExecutor::stats`]
//! returns an [`ExecutorStats`] snapshot.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use scrub_agent::EventBatch;
use scrub_core::plan::{CentralPlan, OperatorKind, OutputCol, OutputMode};
use scrub_core::value::{GroupKey, Value};
use scrub_obs::PlanProfile;

use crate::backend::{BackendAdvance, IngestBackend, InlineBackend};
use crate::executor::GroupState;
use crate::row::{QuerySummary, ResultRow};
use crate::stats::ExecutorStats;
use crate::threaded::ThreadedBackend;

/// One aggregate window closing (for self-observability: ScrubCentral
/// taps a `scrub_window` meta-event per close and feeds the per-query
/// profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowClose {
    /// Window start (ms).
    pub window_start_ms: i64,
    /// Rows the merged window rendered.
    pub rows: u64,
    /// Whether a targeted host was suspected dead at close time.
    pub degraded: bool,
}

/// Runs one query across `p` partitions and merges window results.
pub struct PartitionedExecutor {
    backend: Box<dyn IngestBackend>,
    plan: Arc<CentralPlan>,
    /// Hosts suspected dead right now; rows emitted while this is
    /// non-empty are marked degraded.
    dead_hosts: std::collections::HashSet<String>,
    degraded_rows: u64,
    duplicate_batches: u64,
    /// Window closes since the last [`take_window_closes`] drain.
    closes: Vec<WindowClose>,
    /// Ingest stalls: hand-offs that found a partition's channel full and
    /// had to block. Cumulative (snapshot via [`Self::stats`]; callers
    /// needing deltas diff snapshots).
    backpressure: u64,
    /// Events routed to the backend since creation (each counted exactly
    /// once, whether the batch was handed off whole or split by request
    /// id).
    events_routed: u64,
    /// Windows rendered with at least one group. Counted here at the
    /// router (where merged windows are rendered) so the figure is
    /// partition-count-invariant; per-partition executors never render.
    windows_emitted: u64,
    /// `EXPLAIN ANALYZE` counters that are only partition-count-invariant
    /// when taken at the router: batch bytes decoded, windows closed
    /// (each partition closes its own copy of a window), merged group
    /// rows rendered, and the wall-clock spent in merged rendering. These
    /// overlay the corresponding operators of the merged per-partition
    /// profile — see [`Self::plan_profile`].
    decode_bytes: u64,
    windows_closed: u64,
    rendered_rows: u64,
    render_ns: u64,
    /// Rows dropped by the `max_groups` bound: per-partition drops
    /// (carried on closed [`WindowPartial`](crate::WindowPartial)s) plus
    /// the router's own re-cap of the merged group set.
    /// Partition-count invariant — see
    /// [`update_groups`](crate::executor) for the keep-smallest-keys
    /// argument.
    groups_overflow: u64,
    /// Advance calls that paid the backend barrier / were answered from
    /// the watermark alone (the amortized advance protocol).
    advance_barriers: u64,
    advances_skipped: u64,
}

impl PartitionedExecutor {
    /// Create with `partitions >= 1` shards; the compiled plan is shared
    /// across partitions via `Arc` instead of cloned per partition. This
    /// is the single front door: `partitions == 1` gets the inline
    /// deterministic reference, anything more the threaded batch
    /// pipeline.
    pub fn new(plan: impl Into<Arc<CentralPlan>>, grace_ms: i64, partitions: usize) -> Self {
        let plan = plan.into();
        let partitions = partitions.max(1);
        let backend: Box<dyn IngestBackend> = if partitions == 1 {
            Box::new(InlineBackend::new(Arc::clone(&plan), grace_ms))
        } else {
            Box::new(ThreadedBackend::new(
                Arc::clone(&plan),
                grace_ms,
                partitions,
            ))
        };
        Self::assemble(backend, plan)
    }

    /// Wrap a pre-built backend (the plan is taken from it). Lets callers
    /// that already chose a strategy — or tests exercising one backend
    /// directly — skip the partition-count dispatch in [`Self::new`].
    pub fn with_backend(backend: Box<dyn IngestBackend>) -> Self {
        let plan = backend.plan_arc();
        Self::assemble(backend, plan)
    }

    fn assemble(backend: Box<dyn IngestBackend>, plan: Arc<CentralPlan>) -> Self {
        PartitionedExecutor {
            backend,
            plan,
            dead_hosts: std::collections::HashSet::new(),
            degraded_rows: 0,
            duplicate_batches: 0,
            closes: Vec::new(),
            backpressure: 0,
            events_routed: 0,
            windows_emitted: 0,
            decode_bytes: 0,
            windows_closed: 0,
            rendered_rows: 0,
            render_ns: 0,
            groups_overflow: 0,
            advance_barriers: 0,
            advances_skipped: 0,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.backend.partitions()
    }

    /// The compiled plan this executor runs (window/slide/mode — used by
    /// central's tracer to compute window assignments at the router).
    pub fn plan(&self) -> &CentralPlan {
        &self.plan
    }

    /// The partition an event with this request id routes to (`0` on the
    /// inline backend; the upcoming round-robin partition for whole-batch
    /// routed plans). Exposed so lifecycle traces can record the `Route`
    /// hop without re-deriving the routing.
    pub fn route_partition(&self, request_id: u64) -> usize {
        self.backend.route_partition(request_id)
    }

    /// Replace the set of hosts suspected dead: future rows are marked
    /// degraded and the dead hosts' samples leave the estimator.
    pub fn set_dead_hosts(&mut self, hosts: std::collections::HashSet<String>) {
        self.backend.set_dead_hosts(&hosts);
        self.dead_hosts = hosts;
    }

    /// Hosts currently suspected dead.
    pub fn dead_hosts(&self) -> &std::collections::HashSet<String> {
        &self.dead_hosts
    }

    /// Record a batch discarded as a duplicate retransmission.
    pub fn note_duplicate(&mut self) {
        self.duplicate_batches += 1;
    }

    /// Drain the window closes recorded since the last call.
    pub fn take_window_closes(&mut self) -> Vec<WindowClose> {
        std::mem::take(&mut self.closes)
    }

    /// Snapshot every observable counter in one call. Replaces the
    /// pre-redesign getter-per-counter API; all fields are cumulative
    /// (see [`ExecutorStats`] for per-field semantics and which are
    /// partition-invariant).
    pub fn stats(&self) -> ExecutorStats {
        let (open_windows, join_rows_held) = self.backend.gauges();
        ExecutorStats {
            partitions: self.backend.partitions(),
            events_routed: self.events_routed,
            backpressure_stalls: self.backpressure,
            degraded_rows: self.degraded_rows,
            duplicate_batches: self.duplicate_batches,
            groups_overflow: self.groups_overflow,
            windows_emitted: self.windows_emitted,
            open_windows,
            join_rows_held,
            advance_barriers: self.advance_barriers,
            advances_skipped: self.advances_skipped,
            workers: self.backend.worker_times(),
        }
    }

    /// Hand a batch to the backend: whole-batch round-robin for non-join
    /// plans, request-id split for joins. Header totals are observed
    /// exactly once by whichever component is authoritative for them.
    pub fn ingest(&mut self, batch: EventBatch) {
        self.events_routed += batch.len() as u64;
        // Counted once at the router: per-partition figures would not be
        // invariant under the partition count.
        self.decode_bytes += batch.approx_bytes() as u64;
        self.backpressure += self.backend.ingest(batch);
    }

    /// Emit stream rows and merge+render all windows closed by `now_ms`.
    ///
    /// When the backend can prove no window is due
    /// ([`IngestBackend::needs_advance`]) the barrier is skipped outright
    /// and only the watermark is recorded — on the threaded backend this
    /// makes watermark advancement ride the ingest hand-offs, and the
    /// cross-partition barrier is paid only at window close.
    pub fn advance(&mut self, now_ms: i64) -> Vec<ResultRow> {
        if !self.backend.needs_advance(now_ms) {
            self.advances_skipped += 1;
            self.backend.note_watermark(now_ms);
            return Vec::new();
        }
        self.advance_barriers += 1;
        let BackendAdvance {
            stream_rows,
            partials,
            scale,
        } = self.backend.advance(now_ms);
        let mut out = stream_rows;
        // window start → (merged partial groups, rows already dropped by
        // the per-partition `max_groups` bound)
        type WindowAcc = (Vec<(Vec<GroupKey>, GroupState)>, u64);
        let mut by_window: BTreeMap<i64, WindowAcc> = BTreeMap::new();
        for partial in partials {
            let acc = by_window.entry(partial.window_start_ms).or_default();
            acc.0.extend(partial.groups);
            acc.1 += partial.overflow_rows;
        }
        let degraded_now = !self.dead_hosts.is_empty();
        let t_render = Instant::now();
        for (w, (groups, partial_overflow)) in by_window {
            self.windows_closed += 1;
            // Same semantics as the sequential executor's render path: a
            // window counts as emitted when it closed holding groups.
            if !groups.is_empty() {
                self.windows_emitted += 1;
            }
            let (mut rendered, recap_dropped) = self.render_merged(w, groups, scale);
            let overflow_w = partial_overflow + recap_dropped;
            self.groups_overflow += overflow_w;
            if overflow_w > 0 {
                // The window's aggregates are missing the dropped rows:
                // mark what it did render as degraded, same as rows
                // emitted under a dead host.
                for row in &mut rendered {
                    row.degraded = true;
                }
                self.degraded_rows += rendered.len() as u64;
            }
            self.rendered_rows += rendered.len() as u64;
            self.closes.push(WindowClose {
                window_start_ms: w,
                rows: rendered.len() as u64,
                degraded: degraded_now || overflow_w > 0,
            });
            out.extend(rendered);
        }
        self.render_ns += t_render.elapsed().as_nanos() as u64;
        if !self.dead_hosts.is_empty() {
            for row in &mut out {
                if !row.degraded {
                    self.degraded_rows += 1;
                    row.degraded = true;
                }
            }
        }
        out
    }

    /// Merge one window's per-partition partial groups, re-apply the
    /// `max_groups` bound to the merged set (each partition kept its own
    /// `cap` smallest keys; their union can exceed the cap) and render.
    /// Returns the rendered rows and the rows dropped by the re-cap.
    fn render_merged(
        &self,
        window_start_ms: i64,
        groups: Vec<(Vec<GroupKey>, GroupState)>,
        scale: f64,
    ) -> (Vec<ResultRow>, u64) {
        let OutputMode::Aggregate { output, .. } = &self.plan.mode else {
            return (Vec::new(), 0);
        };
        // merge same-key groups from different partitions
        let mut merged: BTreeMap<Vec<GroupKey>, GroupState> = BTreeMap::new();
        for (key, state) in groups {
            match merged.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(state);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let dst = e.get_mut();
                    for (a, b) in dst.aggs.iter_mut().zip(&state.aggs) {
                        a.merge(b);
                    }
                    dst.rows += state.rows;
                }
            }
        }
        // Re-cap: keep the `cap` smallest keys of the merged set — the
        // same keys a single executor would have kept, so results and
        // dropped-row totals are partition-count invariant.
        let cap = self.plan.max_groups.max(1);
        let mut recap_dropped = 0u64;
        while merged.len() > cap {
            let (_, g) = merged.pop_last().expect("len > cap");
            recap_dropped += g.rows;
        }
        let rows = merged
            .into_values()
            .map(|g| {
                let values: Vec<Value> = output
                    .iter()
                    .map(|col| match col {
                        OutputCol::Group(i) => g.keys.get(*i).cloned().unwrap_or(Value::Null),
                        OutputCol::Agg(i) => g.aggs[*i].finish(scale),
                    })
                    .collect();
                ResultRow {
                    query_id: self.plan.query_id,
                    window_start_ms,
                    values,
                    degraded: false,
                }
            })
            .collect();
        (rows, recap_dropped)
    }

    /// Close everything and produce the end-of-query summary.
    ///
    /// Counter totals (matched/sampled/shed, hosts reporting/live) come
    /// from whichever component observed every batch header exactly once
    /// — the inline executor itself, or the threaded router's
    /// `TotalsTracker` — so they are identical across
    /// backends. The Eq 1–3 estimates need every partition's per-host
    /// Welford moments: the threaded backend merges the workers'
    /// exports in its first-seen host order before computing them (Welford
    /// states combine exactly), matching the inline reference up to
    /// floating-point rounding of the moment merge.
    pub fn finish(&mut self) -> (Vec<ResultRow>, QuerySummary) {
        let rows = self.advance(i64::MAX / 4);
        let mut summary = self.backend.finish_summary(&self.dead_hosts);
        // Overridden from the router, which is the only component that
        // can count these partition-invariantly (it renders the merged
        // windows and re-caps the merged groups).
        summary.degraded_rows = self.degraded_rows;
        summary.duplicate_batches = self.duplicate_batches;
        summary.windows_emitted = self.windows_emitted;
        summary.groups_overflow = self.groups_overflow;
        (rows, summary)
    }

    /// The merged `EXPLAIN ANALYZE` profile of this query.
    ///
    /// The backend provides its merged profile (inline: the executor's
    /// own; threaded: a profile barrier that collects each worker's
    /// central-op slice, sums them, and overlays host ops + notes from
    /// the router-side totals — always fresh, never a tick stale). The
    /// router then overlays the counters only it can measure
    /// partition-invariantly: decoded batch bytes, windows
    /// closed/emitted, merged group rows rendered and the render
    /// wall-clock.
    pub fn plan_profile(&self) -> PlanProfile {
        let mut merged = self.backend.plan_profile();
        for desc in self.plan.operators() {
            let Some(op) = merged.op_mut(desc.id.0) else {
                continue;
            };
            match desc.kind {
                OperatorKind::Decode => op.bytes = self.decode_bytes,
                OperatorKind::GroupAgg => op.rows_out = self.rendered_rows,
                OperatorKind::WindowClose => {
                    op.rows_in = self.windows_closed;
                    op.rows_out = self.windows_emitted;
                    op.ns = self.render_ns;
                }
                _ => {}
            }
        }
        if self.groups_overflow > 0 {
            merged.notes.push(format!(
                "group state capped at {} groups: groups_kept {} (rendered), groups_dropped {} rows past the cap",
                self.plan.max_groups.max(1),
                self.rendered_rows,
                self.groups_overflow
            ));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::{mix, split_by_request_id};
    use scrub_agent::BatchPayload;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::{Event, RequestId};
    use scrub_core::plan::{compile, HostSampleInfo, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
        )
        .unwrap();
        reg
    }

    fn plan_for(src: &str) -> CentralPlan {
        let spec = parse_query(src).unwrap();
        compile(&spec, &registry(), &ScrubConfig::default(), QueryId(5))
            .unwrap()
            .central
    }

    fn ev(type_id: u32, rid: u64, ts: i64, values: Vec<Value>) -> Event {
        Event::new(EventTypeId(type_id), RequestId(rid), ts, values)
    }

    fn feed(n: u64) -> EventBatch {
        EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(5),
            type_id: EventTypeId(0),
            host: "h1".into(),
            payload: BatchPayload::Rows(
                (0..n)
                    .map(|i| ev(0, i, 1_000, vec![Value::Long((i % 7) as i64)]))
                    .collect(),
            ),
            matched: n,
            sampled: n,
            shed: 0,
            budget_shed: 0,
            seen: n,
            bytes: 0,
            spans: vec![],
        }
    }

    /// The decode operator's profiled byte total is the sum of the
    /// batches' accounted sizes, and for columnar payloads that accounted
    /// size is the *exact* encoded frame length — no modeled
    /// approximation anywhere in the chain.
    #[test]
    fn profile_bytes_equal_encoded_columnar_lengths() {
        use scrub_core::config::WireFormat;
        use scrub_core::encode::encode_batch_format;

        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut exec = PartitionedExecutor::new(plan_for(src), 0, 2);
        let mut expect = 0u64;
        for b in 0..4u64 {
            let events: Vec<Event> = (0..50)
                .map(|i| ev(0, b * 50 + i, 1_000, vec![Value::Long((i % 7) as i64)]))
                .collect();
            let frame = encode_batch_format(&events, WireFormat::Columnar);
            let batch = EventBatch {
                seq: b,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(0),
                host: "h1".into(),
                payload: BatchPayload::from_events(events, WireFormat::Columnar),
                matched: 50,
                sampled: 50,
                shed: 0,
                budget_shed: 0,
                seen: 50,
                bytes: 0,
                spans: vec![],
            };
            assert_eq!(
                batch.payload.approx_bytes(),
                frame.len(),
                "columnar payload accounting must be the encoded frame length"
            );
            expect += batch.approx_bytes() as u64;
            exec.ingest(batch);
        }
        exec.advance(60_000);
        let profile = exec.plan_profile();
        let decode = profile
            .ops
            .iter()
            .find(|op| op.label.starts_with("decode"))
            .expect("decode operator in profile");
        assert_eq!(decode.bytes, expect);
    }

    #[test]
    fn partitioned_equals_single_for_grouped_count() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        single.ingest(feed(1000));
        multi.ingest(feed(1000));
        let mut a = single.advance(60_000);
        let mut b = multi.advance(60_000);
        let key = |r: &ResultRow| {
            (
                r.window_start_ms,
                r.values.iter().map(Value::group_key).collect::<Vec<_>>(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn partitioned_join_counts_match_single() {
        let src = "select COUNT(*) from bid, impression window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 8);
        for exec in [&mut single, &mut multi] {
            let bids: Vec<Event> = (0..200).map(|i| ev(0, i, 1_000, vec![])).collect();
            let imps: Vec<Event> = (0..100).map(|i| ev(1, i * 2, 1_500, vec![])).collect();
            exec.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(0),
                host: "h1".into(),
                payload: BatchPayload::Rows(bids),
                matched: 200,
                sampled: 200,
                shed: 0,
                budget_shed: 0,
                seen: 200,
                bytes: 0,
                spans: vec![],
            });
            exec.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(1),
                host: "h2".into(),
                payload: BatchPayload::Rows(imps),
                matched: 100,
                sampled: 100,
                shed: 0,
                budget_shed: 0,
                seen: 100,
                bytes: 0,
                spans: vec![],
            });
        }
        let a = single.advance(60_000);
        let b = multi.advance(60_000);
        assert_eq!(a, b);
        assert_eq!(a[0].values, vec![Value::Long(100)]);
    }

    #[test]
    fn merged_avg_is_correct_not_average_of_averages() {
        let src = "select AVG(bid.price) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        // values 1..=100; avg = 50.5 — merging naive per-partition
        // averages unweighted would only coincide by luck; Welford merge is
        // weighted and exact. Under whole-batch routing a single batch
        // lands on one partition, so split it to occupy several.
        for chunk in (1..=100i64).collect::<Vec<_>>().chunks(10) {
            let events: Vec<Event> = chunk
                .iter()
                .map(|i| ev(0, *i as u64, 1_000, vec![Value::Double(*i as f64)]))
                .collect();
            multi.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(0),
                host: "h1".into(),
                payload: BatchPayload::Rows(events),
                matched: 100,
                sampled: 100,
                shed: 0,
                budget_shed: 0,
                seen: 100,
                bytes: 0,
                spans: vec![],
            });
        }
        let rows = multi.advance(60_000);
        assert_eq!(rows.len(), 1);
        let Value::Double(avg) = rows[0].values[0] else {
            panic!("AVG renders a Double");
        };
        assert_approx(avg, 50.5);
    }

    #[test]
    fn finish_summary_not_double_counted() {
        let src = "select COUNT(*) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(100));
        let (_rows, summary) = multi.finish();
        assert_eq!(summary.total_matched, 100);
        assert_eq!(summary.hosts_reporting, 1);
    }

    #[test]
    fn stream_rows_pass_through() {
        let src = "select bid.user_id from bid";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(10));
        let rows = multi.advance(60_000);
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn split_routes_every_event_exactly_once() {
        let batch = feed(10_000);
        let originals: std::collections::HashSet<u64> = batch
            .payload
            .to_rows()
            .iter()
            .map(|e| e.request_id.0)
            .collect();
        let shards = split_by_request_id(batch, 7);
        // Only non-empty shards come back, each tagged with its partition.
        assert!(shards.len() <= 7);
        assert!(shards.iter().all(|(_, s)| !s.is_empty()));
        // No drops, no duplicates: the union of shard events is exactly
        // the original event set.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for (part, shard) in &shards {
            // The host survives (workers intern it for estimator
            // moments); cumulative counters are zeroed — the router is
            // authoritative for totals and must not double-count.
            assert_eq!(shard.host, "h1");
            assert_eq!(shard.matched, 0);
            assert_eq!(shard.sampled, 0);
            assert_eq!(shard.seen, 0);
            for ev in shard.payload.to_rows() {
                assert!(seen.insert(ev.request_id.0), "event routed twice");
                // routing is by request-id hash, so stable per event
                assert_eq!((mix(ev.request_id.0) % 7) as usize, *part);
            }
            total += shard.len();
        }
        assert_eq!(total, 10_000);
        assert_eq!(seen, originals);
    }

    #[test]
    fn stats_counts_each_event_once() {
        let src = "select COUNT(*) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(500));
        multi.ingest(feed(250));
        let stats = multi.stats();
        assert_eq!(stats.events_routed, 750);
        assert_eq!(stats.partitions, 4);
        assert_eq!(stats.workers.len(), 4);
        let (rows, _) = multi.finish();
        assert_eq!(rows.len(), 1);
        // workers were fed and hit at least one barrier, so their clocks
        // moved
        let stats = multi.stats();
        assert!(stats.advance_barriers >= 1);
        assert!(stats.workers.iter().any(|w| w.busy_ns > 0));
    }

    #[test]
    fn advance_skips_barrier_until_window_due() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        // All events land at ts=1000 → window [0, 10s), closing at 10s
        // (grace 0): every earlier tick is answerable from the watermark
        // alone.
        multi.ingest(feed(100));
        assert!(multi.advance(2_000).is_empty());
        assert!(multi.advance(5_000).is_empty());
        assert!(multi.advance(9_999).is_empty());
        let stats = multi.stats();
        assert_eq!(stats.advance_barriers, 0);
        assert_eq!(stats.advances_skipped, 3);
        // Due now: the barrier fires and the window renders.
        let rows = multi.advance(20_000);
        assert_eq!(rows.len(), 7);
        let stats = multi.stats();
        assert_eq!(stats.advance_barriers, 1);
        assert_eq!(stats.advances_skipped, 3);
        // Inline never skips: advancing is not a barrier there.
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        single.ingest(feed(100));
        assert!(single.advance(2_000).is_empty());
        assert_eq!(single.stats().advances_skipped, 0);
    }

    /// Relative comparison tolerating the floating-point rounding of the
    /// cross-partition Welford merge (and ∞ == ∞ for degenerate bounds).
    fn assert_approx(a: f64, b: f64) {
        if a.is_infinite() || b.is_infinite() {
            assert!(a == b, "{a} vs {b}");
            return;
        }
        let denom = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / denom < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn finish_estimates_partition_invariant() {
        // Regression test: the first threaded backend took estimates
        // from partition 0 alone, whose moments cover only its slice of
        // each host's events — hosts whose events all routed elsewhere
        // estimated 0, biasing τ̂ low. Estimates must come from the
        // merged per-host moments of every partition (workers export
        // moments; the router is authoritative for per-host `matched`).
        let sampled_plan = || {
            let src = "select SUM(bid.price), COUNT(*) from bid sample events 50% window 10 s";
            let spec = parse_query(src).unwrap();
            let mut cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(5)).unwrap();
            cq.central.host_info = HostSampleInfo {
                matching: 6,
                selected: 6,
            };
            cq.central
        };
        let mut single = PartitionedExecutor::new(sampled_plan(), 0, 1);
        let mut multi = PartitionedExecutor::new(sampled_plan(), 0, 4);
        for exec in [&mut single, &mut multi] {
            for h in 0..6u64 {
                // one batch per host lands whole on one partition under
                // round-robin, so most hosts' moments live entirely
                // outside partition 0
                let events: Vec<Event> = (0..3)
                    .map(|i| {
                        ev(
                            0,
                            h * 100 + i,
                            1_000,
                            vec![Value::Double((h * 3 + i) as f64)],
                        )
                    })
                    .collect();
                exec.ingest(EventBatch {
                    seq: 0,
                    attempt: 0,
                    query_id: QueryId(5),
                    type_id: EventTypeId(0),
                    host: format!("h{h}"),
                    payload: BatchPayload::Rows(events),
                    matched: 10,
                    sampled: 3,
                    shed: 0,
                    budget_shed: 0,
                    seen: 10,
                    bytes: 0,
                    spans: vec![],
                });
            }
        }
        let (_, s1) = single.finish();
        let (_, s4) = multi.finish();
        assert_eq!(s1.windows_emitted, s4.windows_emitted);
        assert!(s1.windows_emitted > 0);
        assert_eq!(s1.estimates.len(), s4.estimates.len());
        for (a, b) in s1.estimates.iter().zip(&s4.estimates) {
            let (a, b) = (
                a.expect("SUM/COUNT estimate"),
                b.expect("SUM/COUNT estimate"),
            );
            assert!(a.estimate > 0.0);
            assert_approx(a.estimate, b.estimate);
            assert_approx(a.error_bound, b.error_bound);
            assert_approx(a.variance, b.variance);
        }
    }

    #[test]
    fn threaded_backend_matches_inline_under_dead_hosts() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        let dead: std::collections::HashSet<String> = ["h9".to_string()].into_iter().collect();
        for exec in [&mut single, &mut multi] {
            exec.ingest(feed(300));
            exec.set_dead_hosts(dead.clone());
        }
        let mut a = single.advance(60_000);
        let mut b = multi.advance(60_000);
        let key = |r: &ResultRow| {
            (
                r.window_start_ms,
                r.values.iter().map(Value::group_key).collect::<Vec<_>>(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.degraded));
        let ca = single.take_window_closes();
        let cb = multi.take_window_closes();
        assert_eq!(ca, cb);
        assert_eq!(single.stats().degraded_rows, multi.stats().degraded_rows);
    }

    #[test]
    fn with_backend_wraps_an_explicit_strategy() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let plan = Arc::new(plan_for(src));
        let mut via_new = PartitionedExecutor::new(Arc::clone(&plan), 0, 1);
        let mut via_backend = PartitionedExecutor::with_backend(Box::new(
            crate::backend::InlineBackend::new(Arc::clone(&plan), 0),
        ));
        assert_eq!(via_backend.partitions(), 1);
        via_new.ingest(feed(100));
        via_backend.ingest(feed(100));
        assert_eq!(via_new.advance(60_000), via_backend.advance(60_000));
        let mut threaded = PartitionedExecutor::with_backend(Box::new(ThreadedBackend::new(
            Arc::clone(&plan),
            0,
            3,
        )));
        assert_eq!(threaded.partitions(), 3);
        threaded.ingest(feed(100));
        let rows = threaded.advance(60_000);
        assert_eq!(rows.len(), 7);
    }
}
