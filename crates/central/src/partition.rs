//! Partitioned execution inside ScrubCentral.
//!
//! A single query at Turn's scale can ingest events from thousands of
//! hosts; ScrubCentral therefore shards a query's work across partitions.
//! Events are routed by request id (so the equi-join stays partition-local)
//! and each partition runs an independent [`QueryExecutor`]; when a window
//! closes, per-partition *partial* aggregate states are merged by group key
//! — every [`AggState`](crate::agg::AggState) is mergeable for exactly this
//! reason.
//!
//! # Threading model
//!
//! With `partitions == 1` the executor runs **inline** on the caller's
//! thread — no channels, no threads, bit-identical to the historical
//! sequential path; this is the deterministic reference all differential
//! tests compare against. With `partitions >= 2` each partition owns a
//! persistent OS worker thread fed by a bounded SPSC command channel:
//!
//! * `ingest` splits the batch **once** by request-id hash into
//!   per-partition sub-batches (every event goes to exactly one
//!   partition; every sub-batch keeps the header so cumulative host
//!   counters replicate) and enqueues them. A full channel is counted as
//!   a backpressure stall — visible through
//!   [`PartitionedExecutor::take_backpressure`], never silently absorbed
//!   — before the caller blocks.
//! * `advance` is a synchronous barrier: every worker drains its stream
//!   rows and closed-window partials onto a shared reply channel; replies
//!   are re-ordered by partition index and partials merged by group key,
//!   so the output is deterministic regardless of thread scheduling.
//! * `finish` is a broadcast barrier: every partition exports its
//!   per-host estimator moments, and the router merges them before
//!   computing the Eq 1–3 estimates — one partition's slice alone would
//!   bias them (see [`PartitionedExecutor::finish`]).
//! * workers are joined on drop (or when `finish` tears the query down).
//!
//! Each threaded query owns `partitions` worker threads plus `partitions`
//! bounded channels of up to [`INGEST_CHANNEL_CAP`] sub-batches for its
//! whole lifetime; with N concurrently installed queries that is N×p
//! threads. A shared cross-query pool is future work — until then, size
//! `central_partitions` with the expected concurrent query count in mind.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use scrub_agent::EventBatch;
use scrub_core::event::Event;
use scrub_core::plan::{CentralPlan, OperatorKind, OutputCol, OutputMode};
use scrub_core::value::{GroupKey, Value};
use scrub_obs::PlanProfile;

use crate::executor::{
    estimates_from_states, GroupState, HostEstimatorState, QueryExecutor, WindowPartial,
};
use crate::row::{QuerySummary, ResultRow};

/// Per-partition command-channel capacity (sub-batches in flight). Beyond
/// it the router records a backpressure stall and blocks.
pub const INGEST_CHANNEL_CAP: usize = 128;

/// One aggregate window closing (for self-observability: ScrubCentral
/// taps a `scrub_window` meta-event per close and feeds the per-query
/// profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowClose {
    /// Window start (ms).
    pub window_start_ms: i64,
    /// Rows the merged window rendered.
    pub rows: u64,
    /// Whether a targeted host was suspected dead at close time.
    pub degraded: bool,
}

/// Commands the router sends each partition worker.
enum Cmd {
    /// A pre-routed sub-batch (header always present, events may be empty
    /// so cumulative host counters replicate to every partition).
    Ingest(EventBatch),
    /// Replace the suspected-dead host set.
    SetDeadHosts(std::collections::HashSet<String>),
    /// Barrier: drain stream rows + closed partials up to `now_ms`.
    Advance(i64),
    /// Produce the end-of-query summary and exported estimator state
    /// (broadcast: every partition holds a slice of each host's sampled
    /// moments, so the router must merge all of them).
    Finish,
    /// Exit the worker loop.
    Shutdown,
}

/// One partition's contribution to an [`Cmd::Advance`] barrier.
struct AdvanceReply {
    stream_rows: Vec<ResultRow>,
    partials: Vec<WindowPartial>,
    scale: f64,
    open_windows: usize,
    join_rows_held: u64,
    profile: PlanProfile,
}

enum ReplyBody {
    Advance(AdvanceReply),
    Finish {
        summary: Box<QuerySummary>,
        estimator: Vec<HostEstimatorState>,
        profile: Box<PlanProfile>,
    },
}

struct Reply {
    part: usize,
    body: ReplyBody,
}

/// A partition worker: bounded command channel + joinable thread.
struct Worker {
    tx: mpsc::SyncSender<Cmd>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The persistent thread pool behind a threaded executor.
struct WorkerPool {
    workers: Vec<Worker>,
    reply_rx: mpsc::Receiver<Reply>,
    /// Gauges cached from the latest advance barrier (partition threads
    /// own the live state; these lag by at most one advance tick).
    open_windows: usize,
    join_rows_held: u64,
    /// Per-partition `EXPLAIN ANALYZE` profiles, cached from the latest
    /// advance barrier and refreshed one final time at the finish
    /// barrier. Like the gauges above, a live read lags by at most one
    /// advance tick.
    profiles: Vec<PlanProfile>,
}

impl WorkerPool {
    fn spawn(plan: &Arc<CentralPlan>, grace_ms: i64, partitions: usize) -> Self {
        let (reply_tx, reply_rx) = mpsc::channel();
        let workers = (0..partitions)
            .map(|part| {
                let (tx, rx) = mpsc::sync_channel::<Cmd>(INGEST_CHANNEL_CAP);
                let exec = QueryExecutor::new(Arc::clone(plan), grace_ms);
                let reply_tx = reply_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("scrub-central-p{part}"))
                    .spawn(move || worker_loop(exec, part, rx, reply_tx))
                    .expect("spawn central partition worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            workers,
            reply_rx,
            open_windows: 0,
            join_rows_held: 0,
            profiles: Vec::new(),
        }
    }

    /// Send a control command (blocking; control traffic is not counted
    /// as ingest backpressure).
    fn send(&self, part: usize, cmd: Cmd) {
        self.workers[part]
            .tx
            .send(cmd)
            .expect("central partition worker alive");
    }

    /// Collect exactly one reply per partition and return them in
    /// partition order — the determinism pivot of the parallel path.
    fn collect_advance(&mut self) -> Vec<AdvanceReply> {
        let n = self.workers.len();
        let mut slots: Vec<Option<AdvanceReply>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let reply = self
                .reply_rx
                .recv()
                .expect("central partition worker alive");
            let ReplyBody::Advance(body) = reply.body else {
                panic!("unexpected reply kind during advance barrier");
            };
            slots[reply.part] = Some(body);
        }
        slots
            .into_iter()
            .map(|s| s.expect("one reply per partition"))
            .collect()
    }

    /// Collect one finish reply per partition, in partition order, caching
    /// each partition's final profile.
    #[allow(clippy::type_complexity)]
    fn collect_finish(&mut self) -> Vec<(Box<QuerySummary>, Vec<HostEstimatorState>)> {
        let n = self.workers.len();
        let mut slots: Vec<Option<(Box<QuerySummary>, Vec<HostEstimatorState>)>> =
            (0..n).map(|_| None).collect();
        let mut profiles: Vec<PlanProfile> = vec![PlanProfile::default(); n];
        for _ in 0..n {
            let reply = self
                .reply_rx
                .recv()
                .expect("central partition worker alive");
            let ReplyBody::Finish {
                summary,
                estimator,
                profile,
            } = reply.body
            else {
                panic!("unexpected reply kind during finish barrier");
            };
            profiles[reply.part] = *profile;
            slots[reply.part] = Some((summary, estimator));
        }
        self.profiles = profiles;
        slots
            .into_iter()
            .map(|s| s.expect("one reply per partition"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(
    mut exec: QueryExecutor,
    part: usize,
    rx: mpsc::Receiver<Cmd>,
    reply_tx: mpsc::Sender<Reply>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Ingest(batch) => exec.ingest(batch),
            Cmd::SetDeadHosts(hosts) => exec.set_dead_hosts(hosts),
            Cmd::Advance(now_ms) => {
                let stream_rows = exec.advance_stream_only();
                let partials = exec.take_closed_partials(now_ms);
                let body = AdvanceReply {
                    stream_rows,
                    partials,
                    scale: exec.scale(),
                    open_windows: exec.open_windows(),
                    join_rows_held: (exec.buffered_events() + exec.open_groups()) as u64,
                    profile: exec.plan_profile(),
                };
                if reply_tx
                    .send(Reply {
                        part,
                        body: ReplyBody::Advance(body),
                    })
                    .is_err()
                {
                    return; // router gone
                }
            }
            Cmd::Finish => {
                let estimator = exec.export_estimator_state();
                let (_, summary) = exec.finish();
                if reply_tx
                    .send(Reply {
                        part,
                        body: ReplyBody::Finish {
                            summary: Box::new(summary),
                            estimator,
                            profile: Box::new(exec.plan_profile()),
                        },
                    })
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Shutdown => return,
        }
    }
}

/// How the partitions execute.
enum Backend {
    /// `partitions == 1`: the historical sequential path, inline on the
    /// caller's thread. Deterministic reference. (Boxed: the executor is
    /// much larger than the threaded pool handle.)
    Inline(Box<QueryExecutor>),
    /// `partitions >= 2`: one worker thread per partition.
    Threaded(WorkerPool),
}

/// Runs one query across `p` partitions and merges window results.
pub struct PartitionedExecutor {
    backend: Backend,
    plan: Arc<CentralPlan>,
    /// Hosts suspected dead right now; rows emitted while this is
    /// non-empty are marked degraded.
    dead_hosts: std::collections::HashSet<String>,
    degraded_rows: u64,
    duplicate_batches: u64,
    /// Window closes since the last [`take_window_closes`] drain.
    closes: Vec<WindowClose>,
    /// Ingest stalls: sub-batch sends that found a partition's channel
    /// full and had to block. Drained by [`take_backpressure`].
    backpressure: u64,
    /// Events routed to partitions since creation (each counted exactly
    /// once — see [`split_by_request_id`]).
    events_routed: u64,
    /// Windows rendered with at least one group. Counted here at the
    /// router (where merged windows are rendered) so the figure is
    /// partition-count-invariant; per-partition executors never render.
    windows_emitted: u64,
    /// `EXPLAIN ANALYZE` counters that are only partition-count-invariant
    /// when taken at the router: batch bytes decoded (sub-batch headers
    /// replicate, so per-partition sums would overcount), windows closed
    /// (each partition closes its own copy of a window), merged group
    /// rows rendered, and the wall-clock spent in merged rendering. These
    /// overlay the corresponding operators of the merged per-partition
    /// profile — see [`Self::plan_profile`].
    decode_bytes: u64,
    windows_closed: u64,
    rendered_rows: u64,
    render_ns: u64,
    /// Rows dropped by the `max_groups` bound: per-partition drops
    /// (carried on closed [`WindowPartial`]s) plus the router's own
    /// re-cap of the merged group set. Partition-count invariant — see
    /// [`update_groups`](crate::executor) for the keep-smallest-keys
    /// argument.
    groups_overflow: u64,
}

impl PartitionedExecutor {
    /// Create with `partitions >= 1` shards; the compiled plan is shared
    /// across partitions via `Arc` instead of cloned per partition.
    pub fn new(plan: impl Into<Arc<CentralPlan>>, grace_ms: i64, partitions: usize) -> Self {
        let plan = plan.into();
        let partitions = partitions.max(1);
        let backend = if partitions == 1 {
            Backend::Inline(Box::new(QueryExecutor::new(Arc::clone(&plan), grace_ms)))
        } else {
            Backend::Threaded(WorkerPool::spawn(&plan, grace_ms, partitions))
        };
        PartitionedExecutor {
            backend,
            plan,
            dead_hosts: std::collections::HashSet::new(),
            degraded_rows: 0,
            duplicate_batches: 0,
            closes: Vec::new(),
            backpressure: 0,
            events_routed: 0,
            windows_emitted: 0,
            decode_bytes: 0,
            windows_closed: 0,
            rendered_rows: 0,
            render_ns: 0,
            groups_overflow: 0,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        match &self.backend {
            Backend::Inline(_) => 1,
            Backend::Threaded(pool) => pool.workers.len(),
        }
    }

    /// The compiled plan this executor runs (window/slide/mode — used by
    /// central's tracer to compute window assignments at the router).
    pub fn plan(&self) -> &CentralPlan {
        &self.plan
    }

    /// The partition an event with this request id routes to (`0` on the
    /// inline backend). Same hash as `split_by_request_id`, exposed so
    /// lifecycle traces can record the `Route` hop without re-deriving
    /// the mixer.
    pub fn route_partition(&self, request_id: u64) -> usize {
        match &self.backend {
            Backend::Inline(_) => 0,
            Backend::Threaded(pool) => (mix(request_id) % pool.workers.len() as u64) as usize,
        }
    }

    /// Replace the set of hosts suspected dead: future rows are marked
    /// degraded and the dead hosts' samples leave every partition's
    /// estimator.
    pub fn set_dead_hosts(&mut self, hosts: std::collections::HashSet<String>) {
        match &mut self.backend {
            Backend::Inline(part) => part.set_dead_hosts(hosts.clone()),
            Backend::Threaded(pool) => {
                for i in 0..pool.workers.len() {
                    pool.send(i, Cmd::SetDeadHosts(hosts.clone()));
                }
            }
        }
        self.dead_hosts = hosts;
    }

    /// Hosts currently suspected dead.
    pub fn dead_hosts(&self) -> &std::collections::HashSet<String> {
        &self.dead_hosts
    }

    /// Record a batch discarded as a duplicate retransmission.
    pub fn note_duplicate(&mut self) {
        self.duplicate_batches += 1;
    }

    /// Result rows emitted while some targeted host was suspected dead.
    pub fn degraded_rows(&self) -> u64 {
        self.degraded_rows
    }

    /// Rows dropped so far by the `max_groups` bound (per-partition drops
    /// plus the router's merge re-cap; partition-count invariant).
    pub fn groups_overflow(&self) -> u64 {
        self.groups_overflow
    }

    /// Drain the window closes recorded since the last call.
    pub fn take_window_closes(&mut self) -> Vec<WindowClose> {
        std::mem::take(&mut self.closes)
    }

    /// Windows currently open (largest across partitions — partitions
    /// share window boundaries, they just see different event subsets).
    /// On the threaded backend this is the gauge captured at the latest
    /// advance barrier.
    pub fn open_windows(&self) -> usize {
        match &self.backend {
            Backend::Inline(part) => part.open_windows(),
            Backend::Threaded(pool) => pool.open_windows,
        }
    }

    /// Join/group state rows currently buffered across partitions (on the
    /// threaded backend: as of the latest advance barrier).
    pub fn join_rows_held(&self) -> u64 {
        match &self.backend {
            Backend::Inline(part) => (part.buffered_events() + part.open_groups()) as u64,
            Backend::Threaded(pool) => pool.join_rows_held,
        }
    }

    /// Drain the backpressure-stall count accumulated since the last call
    /// (sub-batch sends that found a partition channel full and blocked).
    pub fn take_backpressure(&mut self) -> u64 {
        std::mem::take(&mut self.backpressure)
    }

    /// Backpressure stalls since the last [`Self::take_backpressure`] drain.
    pub fn backpressure_events(&self) -> u64 {
        self.backpressure
    }

    /// Events routed to partitions so far (each exactly once).
    pub fn events_routed(&self) -> u64 {
        self.events_routed
    }

    /// Route a batch's events to partitions by request id: split once at
    /// ingest, deliver each event to exactly one partition.
    pub fn ingest(&mut self, batch: EventBatch) {
        self.events_routed += batch.events.len() as u64;
        // Counted once at the router: summing per-partition sub-batch
        // sizes would replicate the header allowance per partition.
        self.decode_bytes += batch.approx_bytes() as u64;
        match &mut self.backend {
            Backend::Inline(part) => part.ingest(batch),
            Backend::Threaded(pool) => {
                let subs = split_by_request_id(batch, pool.workers.len());
                for (i, sub) in subs.into_iter().enumerate() {
                    match pool.workers[i].tx.try_send(Cmd::Ingest(sub)) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(cmd)) => {
                            // Explicit backpressure accounting, then block:
                            // the caller (central's message loop) slows to
                            // the partitions' pace instead of buffering
                            // unboundedly.
                            self.backpressure += 1;
                            pool.workers[i]
                                .tx
                                .send(cmd)
                                .expect("central partition worker alive");
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            panic!("central partition worker died");
                        }
                    }
                }
            }
        }
    }

    /// Emit stream rows and merge+render all windows closed by `now_ms`.
    pub fn advance(&mut self, now_ms: i64) -> Vec<ResultRow> {
        let mut out = Vec::new();
        // window start → (merged partial groups, rows already dropped by
        // the per-partition `max_groups` bound)
        type WindowAcc = (Vec<(Vec<GroupKey>, GroupState)>, u64);
        let mut by_window: BTreeMap<i64, WindowAcc> = BTreeMap::new();
        let scale;
        match &mut self.backend {
            Backend::Inline(part) => {
                out.extend(part.advance_stream_only());
                for partial in part.take_closed_partials(now_ms) {
                    let acc = by_window.entry(partial.window_start_ms).or_default();
                    acc.0.extend(partial.groups);
                    acc.1 += partial.overflow_rows;
                }
                scale = part.scale();
            }
            Backend::Threaded(pool) => {
                for i in 0..pool.workers.len() {
                    pool.send(i, Cmd::Advance(now_ms));
                }
                let replies = pool.collect_advance();
                // Partition 0 saw every host's cumulative counters
                // (headers replicate), so its scale is authoritative —
                // mirroring the sequential path.
                scale = replies[0].scale;
                pool.open_windows = replies.iter().map(|r| r.open_windows).max().unwrap_or(0);
                pool.join_rows_held = replies.iter().map(|r| r.join_rows_held).sum();
                pool.profiles = replies.iter().map(|r| r.profile.clone()).collect();
                for reply in replies {
                    out.extend(reply.stream_rows);
                    for partial in reply.partials {
                        let acc = by_window.entry(partial.window_start_ms).or_default();
                        acc.0.extend(partial.groups);
                        acc.1 += partial.overflow_rows;
                    }
                }
            }
        }
        let degraded_now = !self.dead_hosts.is_empty();
        let t_render = Instant::now();
        for (w, (groups, partial_overflow)) in by_window {
            self.windows_closed += 1;
            // Same semantics as the sequential executor's render path: a
            // window counts as emitted when it closed holding groups.
            if !groups.is_empty() {
                self.windows_emitted += 1;
            }
            let (mut rendered, recap_dropped) = self.render_merged(w, groups, scale);
            let overflow_w = partial_overflow + recap_dropped;
            self.groups_overflow += overflow_w;
            if overflow_w > 0 {
                // The window's aggregates are missing the dropped rows:
                // mark what it did render as degraded, same as rows
                // emitted under a dead host.
                for row in &mut rendered {
                    row.degraded = true;
                }
                self.degraded_rows += rendered.len() as u64;
            }
            self.rendered_rows += rendered.len() as u64;
            self.closes.push(WindowClose {
                window_start_ms: w,
                rows: rendered.len() as u64,
                degraded: degraded_now || overflow_w > 0,
            });
            out.extend(rendered);
        }
        self.render_ns += t_render.elapsed().as_nanos() as u64;
        if !self.dead_hosts.is_empty() {
            for row in &mut out {
                if !row.degraded {
                    self.degraded_rows += 1;
                    row.degraded = true;
                }
            }
        }
        out
    }

    /// Merge one window's per-partition partial groups, re-apply the
    /// `max_groups` bound to the merged set (each partition kept its own
    /// `cap` smallest keys; their union can exceed the cap) and render.
    /// Returns the rendered rows and the rows dropped by the re-cap.
    fn render_merged(
        &self,
        window_start_ms: i64,
        groups: Vec<(Vec<GroupKey>, GroupState)>,
        scale: f64,
    ) -> (Vec<ResultRow>, u64) {
        let OutputMode::Aggregate { output, .. } = &self.plan.mode else {
            return (Vec::new(), 0);
        };
        // merge same-key groups from different partitions
        let mut merged: BTreeMap<Vec<GroupKey>, GroupState> = BTreeMap::new();
        for (key, state) in groups {
            match merged.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(state);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let dst = e.get_mut();
                    for (a, b) in dst.aggs.iter_mut().zip(&state.aggs) {
                        a.merge(b);
                    }
                    dst.rows += state.rows;
                }
            }
        }
        // Re-cap: keep the `cap` smallest keys of the merged set — the
        // same keys a single executor would have kept, so results and
        // dropped-row totals are partition-count invariant.
        let cap = self.plan.max_groups.max(1);
        let mut recap_dropped = 0u64;
        while merged.len() > cap {
            let (_, g) = merged.pop_last().expect("len > cap");
            recap_dropped += g.rows;
        }
        let rows = merged
            .into_values()
            .map(|g| {
                let values: Vec<Value> = output
                    .iter()
                    .map(|col| match col {
                        OutputCol::Group(i) => g.keys.get(*i).cloned().unwrap_or(Value::Null),
                        OutputCol::Agg(i) => g.aggs[*i].finish(scale),
                    })
                    .collect();
                ResultRow {
                    query_id: self.plan.query_id,
                    window_start_ms,
                    values,
                    degraded: false,
                }
            })
            .collect();
        (rows, recap_dropped)
    }

    /// Close everything and produce the end-of-query summary.
    ///
    /// Counter totals (matched/sampled/shed, hosts reporting/live) come
    /// from partition 0 — batch headers replicate to every partition, so
    /// its cumulative counters are authoritative. The Eq 1–3 estimates do
    /// **not** replicate: each partition holds the moments of only the
    /// events it ingested, so every partition exports its per-host
    /// [`HostEstimatorState`] and the router merges them (Welford states
    /// combine exactly) before computing the estimates. Partition 0's
    /// first-seen host order fixes the reduction order, so the result is
    /// deterministic for a given partition count and matches the inline
    /// reference up to floating-point rounding of the moment merge.
    pub fn finish(&mut self) -> (Vec<ResultRow>, QuerySummary) {
        let rows = self.advance(i64::MAX / 4);
        let mut summary = match &mut self.backend {
            Backend::Inline(part) => part.finish().1,
            Backend::Threaded(pool) => {
                for i in 0..pool.workers.len() {
                    pool.send(i, Cmd::Finish);
                }
                let replies = pool.collect_finish();
                let mut merged: Vec<HostEstimatorState> = Vec::new();
                let mut index: std::collections::HashMap<String, usize> =
                    std::collections::HashMap::new();
                let mut summary0: Option<Box<QuerySummary>> = None;
                for (part, (summary, states)) in replies.into_iter().enumerate() {
                    if part == 0 {
                        summary0 = Some(summary);
                    }
                    for st in states {
                        match index.get(&st.host) {
                            Some(&i) => merged[i].merge(st),
                            None => {
                                index.insert(st.host.clone(), merged.len());
                                merged.push(st);
                            }
                        }
                    }
                }
                let mut summary = *summary0.expect("partition 0 always replies");
                summary.estimates = estimates_from_states(&self.plan, &merged, &self.dead_hosts);
                summary
            }
        };
        summary.degraded_rows = self.degraded_rows;
        summary.duplicate_batches = self.duplicate_batches;
        summary.windows_emitted = self.windows_emitted;
        // overridden from the router, where every closed window's
        // overflow (per-partition drops + merge re-cap) is accumulated
        summary.groups_overflow = self.groups_overflow;
        (rows, summary)
    }

    /// The merged `EXPLAIN ANALYZE` profile of this query.
    ///
    /// Per-partition profiles merge under the [`PlanProfile`] contract
    /// (host-side operators by max — headers replicate — central-side by
    /// sum over disjoint event slices); the router then overlays the
    /// counters only it can measure partition-invariantly: decoded batch
    /// bytes, windows closed/emitted, merged group rows rendered and the
    /// render wall-clock. On the threaded backend the inputs are the
    /// profiles cached at the latest advance barrier (≤ 1 tick stale
    /// while live; final after [`Self::finish`]).
    pub fn plan_profile(&self) -> PlanProfile {
        let mut merged = match &self.backend {
            Backend::Inline(part) => part.plan_profile(),
            Backend::Threaded(pool) => {
                let mut it = pool.profiles.iter();
                match it.next() {
                    Some(first) => {
                        let mut acc = first.clone();
                        for p in it {
                            acc.merge(p);
                        }
                        acc
                    }
                    // No barrier yet: a fresh executor yields the
                    // all-zero operator skeleton for this plan.
                    None => QueryExecutor::new(Arc::clone(&self.plan), 0).plan_profile(),
                }
            }
        };
        for desc in self.plan.operators() {
            let Some(op) = merged.op_mut(desc.id.0) else {
                continue;
            };
            match desc.kind {
                OperatorKind::Decode => op.bytes = self.decode_bytes,
                OperatorKind::GroupAgg => op.rows_out = self.rendered_rows,
                OperatorKind::WindowClose => {
                    op.rows_in = self.windows_closed;
                    op.rows_out = self.windows_emitted;
                    op.ns = self.render_ns;
                }
                _ => {}
            }
        }
        if self.groups_overflow > 0 {
            merged.notes.push(format!(
                "group state capped at {} groups: groups_kept {} (rendered), groups_dropped {} rows past the cap",
                self.plan.max_groups.max(1),
                self.rendered_rows,
                self.groups_overflow
            ));
        }
        merged
    }
}

/// Split a batch by request-id hash into one sub-batch per partition in a
/// single pass. Every event lands in exactly one sub-batch; every
/// sub-batch carries the original header (host + cumulative
/// matched/sampled/shed counters) so each partition's estimator sees the
/// full per-host totals even when its event slice is empty.
fn split_by_request_id(batch: EventBatch, partitions: usize) -> Vec<EventBatch> {
    let p = partitions as u64;
    let mut shards: Vec<Vec<Event>> = (0..partitions).map(|_| Vec::new()).collect();
    let total = batch.events.len();
    for ev in batch.events {
        let shard = (mix(ev.request_id.0) % p) as usize;
        shards[shard].push(ev);
    }
    debug_assert_eq!(
        shards.iter().map(Vec::len).sum::<usize>(),
        total,
        "split must route every event to exactly one partition"
    );
    shards
        .into_iter()
        .map(|events| EventBatch {
            query_id: batch.query_id,
            seq: batch.seq,
            attempt: batch.attempt,
            type_id: batch.type_id,
            host: batch.host.clone(),
            events,
            matched: batch.matched,
            sampled: batch.sampled,
            shed: batch.shed,
            budget_shed: batch.budget_shed,
            seen: batch.seen,
            bytes: batch.bytes,
            spans: vec![],
        })
        .collect()
}

/// splitmix64-style mixer for request-id routing.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::{Event, RequestId};
    use scrub_core::plan::{compile, HostSampleInfo, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
        )
        .unwrap();
        reg
    }

    fn plan_for(src: &str) -> CentralPlan {
        let spec = parse_query(src).unwrap();
        compile(&spec, &registry(), &ScrubConfig::default(), QueryId(5))
            .unwrap()
            .central
    }

    fn ev(type_id: u32, rid: u64, ts: i64, values: Vec<Value>) -> Event {
        Event::new(EventTypeId(type_id), RequestId(rid), ts, values)
    }

    fn feed(n: u64) -> EventBatch {
        EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(5),
            type_id: EventTypeId(0),
            host: "h1".into(),
            events: (0..n)
                .map(|i| ev(0, i, 1_000, vec![Value::Long((i % 7) as i64)]))
                .collect(),
            matched: n,
            sampled: n,
            shed: 0,
            budget_shed: 0,
            seen: n,
            bytes: 0,
            spans: vec![],
        }
    }

    #[test]
    fn partitioned_equals_single_for_grouped_count() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        single.ingest(feed(1000));
        multi.ingest(feed(1000));
        let mut a = single.advance(60_000);
        let mut b = multi.advance(60_000);
        let key = |r: &ResultRow| {
            (
                r.window_start_ms,
                r.values.iter().map(Value::group_key).collect::<Vec<_>>(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn partitioned_join_counts_match_single() {
        let src = "select COUNT(*) from bid, impression window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 8);
        for exec in [&mut single, &mut multi] {
            let bids: Vec<Event> = (0..200).map(|i| ev(0, i, 1_000, vec![])).collect();
            let imps: Vec<Event> = (0..100).map(|i| ev(1, i * 2, 1_500, vec![])).collect();
            exec.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(0),
                host: "h1".into(),
                events: bids,
                matched: 200,
                sampled: 200,
                shed: 0,
                budget_shed: 0,
                seen: 200,
                bytes: 0,
                spans: vec![],
            });
            exec.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(1),
                host: "h2".into(),
                events: imps,
                matched: 100,
                sampled: 100,
                shed: 0,
                budget_shed: 0,
                seen: 100,
                bytes: 0,
                spans: vec![],
            });
        }
        let a = single.advance(60_000);
        let b = multi.advance(60_000);
        assert_eq!(a, b);
        assert_eq!(a[0].values, vec![Value::Long(100)]);
    }

    #[test]
    fn merged_avg_is_correct_not_average_of_averages() {
        let src = "select AVG(bid.price) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        // values 1..=100; avg = 50.5 — merging naive per-partition
        // averages unweighted would only coincide by luck; Welford merge is
        // weighted and exact.
        let events: Vec<Event> = (1..=100)
            .map(|i| ev(0, i, 1_000, vec![Value::Double(i as f64)]))
            .collect();
        multi.ingest(EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(5),
            type_id: EventTypeId(0),
            host: "h1".into(),
            events,
            matched: 100,
            sampled: 100,
            shed: 0,
            budget_shed: 0,
            seen: 100,
            bytes: 0,
            spans: vec![],
        });
        let rows = multi.advance(60_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Value::Double(50.5)]);
    }

    #[test]
    fn finish_summary_not_double_counted() {
        let src = "select COUNT(*) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(100));
        let (_rows, summary) = multi.finish();
        assert_eq!(summary.total_matched, 100);
        assert_eq!(summary.hosts_reporting, 1);
    }

    #[test]
    fn stream_rows_pass_through() {
        let src = "select bid.user_id from bid";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(10));
        let rows = multi.advance(60_000);
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn split_routes_every_event_exactly_once() {
        let batch = feed(10_000);
        let originals: std::collections::HashSet<u64> =
            batch.events.iter().map(|e| e.request_id.0).collect();
        let subs = split_by_request_id(batch, 7);
        assert_eq!(subs.len(), 7);
        // No drops, no duplicates: the union of sub-batch events is exactly
        // the original event set and counts add up.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for sub in &subs {
            assert_eq!(sub.host, "h1");
            assert_eq!(sub.matched, 10_000);
            assert_eq!(sub.sampled, 10_000);
            for ev in &sub.events {
                assert!(seen.insert(ev.request_id.0), "event routed twice");
                // routing is by request-id hash, so stable per event
                assert_eq!(
                    (mix(ev.request_id.0) % 7) as usize,
                    subs.iter().position(|s| std::ptr::eq(s, sub)).unwrap()
                );
            }
            total += sub.events.len();
        }
        assert_eq!(total, 10_000);
        assert_eq!(seen, originals);
    }

    #[test]
    fn events_routed_counter_counts_each_event_once() {
        let src = "select COUNT(*) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(500));
        multi.ingest(feed(250));
        assert_eq!(multi.events_routed(), 750);
        let (rows, _) = multi.finish();
        assert_eq!(rows.len(), 1);
    }

    /// Relative comparison tolerating the floating-point rounding of the
    /// cross-partition Welford merge (and ∞ == ∞ for degenerate bounds).
    fn assert_approx(a: f64, b: f64) {
        if a.is_infinite() || b.is_infinite() {
            assert!(a == b, "{a} vs {b}");
            return;
        }
        let denom = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / denom < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn finish_estimates_partition_invariant() {
        // Regression test: the threaded backend used to take estimates
        // from partition 0 alone, whose moments cover only its slice of
        // each host's events — hosts whose events all hashed elsewhere
        // estimated 0, biasing τ̂ low. Estimates must now come from the
        // merged per-host moments of every partition.
        let sampled_plan = || {
            let src = "select SUM(bid.price), COUNT(*) from bid sample events 50% window 10 s";
            let spec = parse_query(src).unwrap();
            let mut cq = compile(&spec, &registry(), &ScrubConfig::default(), QueryId(5)).unwrap();
            cq.central.host_info = HostSampleInfo {
                matching: 6,
                selected: 6,
            };
            cq.central
        };
        let mut single = PartitionedExecutor::new(sampled_plan(), 0, 1);
        let mut multi = PartitionedExecutor::new(sampled_plan(), 0, 4);
        for exec in [&mut single, &mut multi] {
            for h in 0..6u64 {
                // few events per host with distinct request ids, so some
                // hosts land entirely outside partition 0
                let events: Vec<Event> = (0..3)
                    .map(|i| {
                        ev(
                            0,
                            h * 100 + i,
                            1_000,
                            vec![Value::Double((h * 3 + i) as f64)],
                        )
                    })
                    .collect();
                exec.ingest(EventBatch {
                    seq: 0,
                    attempt: 0,
                    query_id: QueryId(5),
                    type_id: EventTypeId(0),
                    host: format!("h{h}"),
                    events,
                    matched: 10,
                    sampled: 3,
                    shed: 0,
                    budget_shed: 0,
                    seen: 10,
                    bytes: 0,
                    spans: vec![],
                });
            }
        }
        let (_, s1) = single.finish();
        let (_, s4) = multi.finish();
        assert_eq!(s1.windows_emitted, s4.windows_emitted);
        assert!(s1.windows_emitted > 0);
        assert_eq!(s1.estimates.len(), s4.estimates.len());
        for (a, b) in s1.estimates.iter().zip(&s4.estimates) {
            let (a, b) = (
                a.expect("SUM/COUNT estimate"),
                b.expect("SUM/COUNT estimate"),
            );
            assert!(a.estimate > 0.0);
            assert_approx(a.estimate, b.estimate);
            assert_approx(a.error_bound, b.error_bound);
            assert_approx(a.variance, b.variance);
        }
    }

    #[test]
    fn threaded_backend_matches_inline_under_dead_hosts() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        let dead: std::collections::HashSet<String> = ["h9".to_string()].into_iter().collect();
        for exec in [&mut single, &mut multi] {
            exec.ingest(feed(300));
            exec.set_dead_hosts(dead.clone());
        }
        let mut a = single.advance(60_000);
        let mut b = multi.advance(60_000);
        let key = |r: &ResultRow| {
            (
                r.window_start_ms,
                r.values.iter().map(Value::group_key).collect::<Vec<_>>(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.degraded));
        let ca = single.take_window_closes();
        let cb = multi.take_window_closes();
        assert_eq!(ca, cb);
        assert_eq!(single.degraded_rows(), multi.degraded_rows());
    }
}
