//! Partitioned execution inside ScrubCentral.
//!
//! A single query at Turn's scale can ingest events from thousands of
//! hosts; ScrubCentral therefore shards a query's work across partitions.
//! Events are routed by request id (so the equi-join stays partition-local)
//! and each partition runs an independent [`QueryExecutor`]; when a window
//! closes, per-partition *partial* aggregate states are merged by group key
//! — every [`AggState`](crate::agg::AggState) is mergeable for exactly this
//! reason.

use std::collections::BTreeMap;

use scrub_agent::EventBatch;
use scrub_core::plan::{CentralPlan, OutputCol, OutputMode};
use scrub_core::value::{GroupKey, Value};

use crate::executor::{GroupState, QueryExecutor};
use crate::row::{QuerySummary, ResultRow};

/// One aggregate window closing (for self-observability: ScrubCentral
/// taps a `scrub_window` meta-event per close and feeds the per-query
/// profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowClose {
    /// Window start (ms).
    pub window_start_ms: i64,
    /// Rows the merged window rendered.
    pub rows: u64,
    /// Whether a targeted host was suspected dead at close time.
    pub degraded: bool,
}

/// Runs one query across `p` partitions and merges window results.
pub struct PartitionedExecutor {
    parts: Vec<QueryExecutor>,
    plan: CentralPlan,
    /// Hosts suspected dead right now; rows emitted while this is
    /// non-empty are marked degraded.
    dead_hosts: std::collections::HashSet<String>,
    degraded_rows: u64,
    duplicate_batches: u64,
    /// Window closes since the last [`take_window_closes`] drain.
    closes: Vec<WindowClose>,
}

impl PartitionedExecutor {
    /// Create with `partitions >= 1` shards.
    pub fn new(plan: CentralPlan, grace_ms: i64, partitions: usize) -> Self {
        let partitions = partitions.max(1);
        let parts = (0..partitions)
            .map(|_| QueryExecutor::new(plan.clone(), grace_ms))
            .collect();
        PartitionedExecutor {
            parts,
            plan,
            dead_hosts: std::collections::HashSet::new(),
            degraded_rows: 0,
            duplicate_batches: 0,
            closes: Vec::new(),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Replace the set of hosts suspected dead: future rows are marked
    /// degraded and the dead hosts' samples leave every partition's
    /// estimator.
    pub fn set_dead_hosts(&mut self, hosts: std::collections::HashSet<String>) {
        for part in &mut self.parts {
            part.set_dead_hosts(hosts.clone());
        }
        self.dead_hosts = hosts;
    }

    /// Hosts currently suspected dead.
    pub fn dead_hosts(&self) -> &std::collections::HashSet<String> {
        &self.dead_hosts
    }

    /// Record a batch discarded as a duplicate retransmission.
    pub fn note_duplicate(&mut self) {
        self.duplicate_batches += 1;
    }

    /// Result rows emitted while some targeted host was suspected dead.
    pub fn degraded_rows(&self) -> u64 {
        self.degraded_rows
    }

    /// Drain the window closes recorded since the last call.
    pub fn take_window_closes(&mut self) -> Vec<WindowClose> {
        std::mem::take(&mut self.closes)
    }

    /// Windows currently open (largest across partitions — partitions
    /// share window boundaries, they just see different event subsets).
    pub fn open_windows(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.open_windows())
            .max()
            .unwrap_or(0)
    }

    /// Join/group state rows currently buffered across partitions.
    pub fn join_rows_held(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| (p.buffered_events() + p.open_groups()) as u64)
            .sum()
    }

    /// Route a batch's events to partitions by request id.
    pub fn ingest(&mut self, batch: EventBatch) {
        let p = self.parts.len() as u64;
        if p == 1 {
            self.parts[0].ingest(batch);
            return;
        }
        // Split the batch, preserving the cumulative counters on every
        // shard's copy (each partition needs the host totals for scaling;
        // the merge step deduplicates by host so totals are not double
        // counted — see merge_summaries).
        let mut shards: Vec<Vec<scrub_core::event::Event>> =
            (0..self.parts.len()).map(|_| Vec::new()).collect();
        for ev in batch.events {
            let shard = (mix(ev.request_id.0) % p) as usize;
            shards[shard].push(ev);
        }
        for (i, events) in shards.into_iter().enumerate() {
            self.parts[i].ingest(EventBatch {
                query_id: batch.query_id,
                seq: batch.seq,
                attempt: batch.attempt,
                type_id: batch.type_id,
                host: batch.host.clone(),
                events,
                matched: batch.matched,
                sampled: batch.sampled,
                shed: batch.shed,
            });
        }
    }

    /// Emit stream rows and merge+render all windows closed by `now_ms`.
    pub fn advance(&mut self, now_ms: i64) -> Vec<ResultRow> {
        let mut out = Vec::new();
        for part in &mut self.parts {
            out.extend(part.advance_stream_only());
        }
        // Gather closed partials from each partition, keyed by window.
        let mut by_window: BTreeMap<i64, Vec<(Vec<GroupKey>, GroupState)>> = BTreeMap::new();
        for part in &mut self.parts {
            for partial in part.take_closed_partials(now_ms) {
                by_window
                    .entry(partial.window_start_ms)
                    .or_default()
                    .extend(partial.groups);
            }
        }
        let scale = self.parts[0].scale();
        let degraded_now = !self.dead_hosts.is_empty();
        for (w, groups) in by_window {
            let rendered = self.render_merged(w, groups, scale);
            self.closes.push(WindowClose {
                window_start_ms: w,
                rows: rendered.len() as u64,
                degraded: degraded_now,
            });
            out.extend(rendered);
        }
        if !self.dead_hosts.is_empty() {
            for row in &mut out {
                row.degraded = true;
            }
            self.degraded_rows += out.len() as u64;
        }
        out
    }

    fn render_merged(
        &self,
        window_start_ms: i64,
        groups: Vec<(Vec<GroupKey>, GroupState)>,
        scale: f64,
    ) -> Vec<ResultRow> {
        let OutputMode::Aggregate { output, .. } = &self.plan.mode else {
            return Vec::new();
        };
        // merge same-key groups from different partitions
        let mut merged: BTreeMap<Vec<GroupKey>, GroupState> = BTreeMap::new();
        for (key, state) in groups {
            match merged.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(state);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let dst = e.get_mut();
                    for (a, b) in dst.aggs.iter_mut().zip(&state.aggs) {
                        a.merge(b);
                    }
                }
            }
        }
        merged
            .into_values()
            .map(|g| {
                let values: Vec<Value> = output
                    .iter()
                    .map(|col| match col {
                        OutputCol::Group(i) => g.keys.get(*i).cloned().unwrap_or(Value::Null),
                        OutputCol::Agg(i) => g.aggs[*i].finish(scale),
                    })
                    .collect();
                ResultRow {
                    query_id: self.plan.query_id,
                    window_start_ms,
                    values,
                    degraded: false,
                }
            })
            .collect()
    }

    /// Close everything; summaries are merged across partitions (host
    /// totals are per-host cumulative and identical on every shard, so the
    /// first partition's summary carries them).
    pub fn finish(&mut self) -> (Vec<ResultRow>, QuerySummary) {
        let rows = self.advance(i64::MAX / 4);
        // Partition 0 saw every host's cumulative counters (batches are
        // replicated header-wise), so its summary totals are authoritative.
        let (_, mut summary) = self.parts[0].finish();
        summary.degraded_rows = self.degraded_rows;
        summary.duplicate_batches = self.duplicate_batches;
        (rows, summary)
    }
}

/// splitmix64-style mixer for request-id routing.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrub_core::config::ScrubConfig;
    use scrub_core::event::{Event, RequestId};
    use scrub_core::plan::{compile, QueryId};
    use scrub_core::ql::parser::parse_query;
    use scrub_core::schema::{EventSchema, EventTypeId, FieldDef, FieldType, SchemaRegistry};

    fn registry() -> SchemaRegistry {
        let reg = SchemaRegistry::new();
        reg.register(
            EventSchema::new(
                "bid",
                vec![
                    FieldDef::new("user_id", FieldType::Long),
                    FieldDef::new("price", FieldType::Double),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        reg.register(
            EventSchema::new("impression", vec![FieldDef::new("cost", FieldType::Double)]).unwrap(),
        )
        .unwrap();
        reg
    }

    fn plan_for(src: &str) -> CentralPlan {
        let spec = parse_query(src).unwrap();
        compile(&spec, &registry(), &ScrubConfig::default(), QueryId(5))
            .unwrap()
            .central
    }

    fn ev(type_id: u32, rid: u64, ts: i64, values: Vec<Value>) -> Event {
        Event::new(EventTypeId(type_id), RequestId(rid), ts, values)
    }

    fn feed(n: u64) -> EventBatch {
        EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(5),
            type_id: EventTypeId(0),
            host: "h1".into(),
            events: (0..n)
                .map(|i| ev(0, i, 1_000, vec![Value::Long((i % 7) as i64)]))
                .collect(),
            matched: n,
            sampled: n,
            shed: 0,
        }
    }

    #[test]
    fn partitioned_equals_single_for_grouped_count() {
        let src = "select bid.user_id, COUNT(*) from bid group by bid.user_id window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        single.ingest(feed(1000));
        multi.ingest(feed(1000));
        let mut a = single.advance(60_000);
        let mut b = multi.advance(60_000);
        let key = |r: &ResultRow| {
            (
                r.window_start_ms,
                r.values.iter().map(Value::group_key).collect::<Vec<_>>(),
            )
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn partitioned_join_counts_match_single() {
        let src = "select COUNT(*) from bid, impression window 10 s";
        let mut single = PartitionedExecutor::new(plan_for(src), 0, 1);
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 8);
        for exec in [&mut single, &mut multi] {
            let bids: Vec<Event> = (0..200).map(|i| ev(0, i, 1_000, vec![])).collect();
            let imps: Vec<Event> = (0..100).map(|i| ev(1, i * 2, 1_500, vec![])).collect();
            exec.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(0),
                host: "h1".into(),
                events: bids,
                matched: 200,
                sampled: 200,
                shed: 0,
            });
            exec.ingest(EventBatch {
                seq: 0,
                attempt: 0,
                query_id: QueryId(5),
                type_id: EventTypeId(1),
                host: "h2".into(),
                events: imps,
                matched: 100,
                sampled: 100,
                shed: 0,
            });
        }
        let a = single.advance(60_000);
        let b = multi.advance(60_000);
        assert_eq!(a, b);
        assert_eq!(a[0].values, vec![Value::Long(100)]);
    }

    #[test]
    fn merged_avg_is_correct_not_average_of_averages() {
        let src = "select AVG(bid.price) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        // values 1..=100; avg = 50.5 — merging naive per-partition
        // averages unweighted would only coincide by luck; Welford merge is
        // weighted and exact.
        let events: Vec<Event> = (1..=100)
            .map(|i| ev(0, i, 1_000, vec![Value::Double(i as f64)]))
            .collect();
        multi.ingest(EventBatch {
            seq: 0,
            attempt: 0,
            query_id: QueryId(5),
            type_id: EventTypeId(0),
            host: "h1".into(),
            events,
            matched: 100,
            sampled: 100,
            shed: 0,
        });
        let rows = multi.advance(60_000);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![Value::Double(50.5)]);
    }

    #[test]
    fn finish_summary_not_double_counted() {
        let src = "select COUNT(*) from bid window 10 s";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(100));
        let (_rows, summary) = multi.finish();
        assert_eq!(summary.total_matched, 100);
        assert_eq!(summary.hosts_reporting, 1);
    }

    #[test]
    fn stream_rows_pass_through() {
        let src = "select bid.user_id from bid";
        let mut multi = PartitionedExecutor::new(plan_for(src), 0, 4);
        multi.ingest(feed(10));
        let rows = multi.advance(60_000);
        assert_eq!(rows.len(), 10);
    }
}
