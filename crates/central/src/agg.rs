//! Aggregation operator states for ScrubCentral.
//!
//! Every state is *mergeable* so the partitioned executor can combine
//! partial aggregates computed on different partitions of the same window
//! (and so could a multi-node ScrubCentral cluster).

use serde::{Deserialize, Serialize};

use scrub_core::plan::AggSpec;
use scrub_core::ql::ast::AggFn;
use scrub_core::value::{GroupKey, Value};
use scrub_sketch::{HyperLogLog, SpaceSaving, Welford};

/// How many SpaceSaving counters to keep per requested `k` (extra headroom
/// improves precision at negligible cost).
const TOPK_CAPACITY_FACTOR: usize = 8;

/// Running state of one aggregate within one (window, group).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AggState {
    /// COUNT(*) / COUNT(expr).
    Count(u64),
    /// SUM(expr).
    Sum { sum: f64, any: bool },
    /// AVG(expr).
    Avg(Welford),
    /// MIN(expr).
    Min(Option<Value>),
    /// MAX(expr).
    Max(Option<Value>),
    /// TOP(k, expr): SpaceSaving over canonicalized values.
    TopK {
        k: usize,
        sketch: SpaceSaving<GroupKey>,
        /// Original value per key for readable output.
        display: std::collections::HashMap<GroupKey, Value>,
    },
    /// COUNT_DISTINCT(expr): HyperLogLog.
    CountDistinct(HyperLogLog),
}

impl AggState {
    /// Fresh state for an aggregate spec.
    pub fn new(spec: &AggSpec) -> Self {
        match &spec.func {
            AggFn::Count => AggState::Count(0),
            AggFn::Sum => AggState::Sum {
                sum: 0.0,
                any: false,
            },
            AggFn::Avg => AggState::Avg(Welford::new()),
            AggFn::Min => AggState::Min(None),
            AggFn::Max => AggState::Max(None),
            AggFn::TopK(k) => AggState::TopK {
                k: *k,
                sketch: SpaceSaving::new(k * TOPK_CAPACITY_FACTOR),
                display: std::collections::HashMap::new(),
            },
            AggFn::CountDistinct => AggState::CountDistinct(HyperLogLog::default_precision()),
        }
    }

    /// Fold one input value in. `None` arises only for `COUNT(*)`.
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                // COUNT(expr) skips nulls; COUNT(*) counts rows.
                if !matches!(v, Some(Value::Null)) {
                    *c += 1;
                }
            }
            AggState::Sum { sum, any } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                    *any = true;
                }
            }
            AggState::Avg(w) => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    w.add(x);
                }
            }
            AggState::Min(cur) => {
                if let Some(x) = v {
                    if x.is_null() {
                        return;
                    }
                    let better = match cur {
                        None => true,
                        Some(c) => x.total_cmp(c) == std::cmp::Ordering::Less,
                    };
                    if better {
                        *cur = Some(x.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(x) = v {
                    if x.is_null() {
                        return;
                    }
                    let better = match cur {
                        None => true,
                        Some(c) => x.total_cmp(c) == std::cmp::Ordering::Greater,
                    };
                    if better {
                        *cur = Some(x.clone());
                    }
                }
            }
            AggState::TopK {
                sketch, display, ..
            } => {
                if let Some(x) = v {
                    if x.is_null() {
                        return;
                    }
                    let key = x.group_key();
                    display.entry(key.clone()).or_insert_with(|| x.clone());
                    sketch.offer(key);
                }
            }
            AggState::CountDistinct(hll) => {
                if let Some(x) = v {
                    if x.is_null() {
                        return;
                    }
                    hll.add_hash(group_key_hash(&x.group_key()));
                }
            }
        }
    }

    /// Merge a partial state produced on another partition.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum { sum: a, any: aa }, AggState::Sum { sum: b, any: ba }) => {
                *a += b;
                *aa |= ba;
            }
            (AggState::Avg(a), AggState::Avg(b)) => a.merge(b),
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(x) = b {
                    let better = match &a {
                        None => true,
                        Some(c) => x.total_cmp(c) == std::cmp::Ordering::Less,
                    };
                    if better {
                        *a = Some(x.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(x) = b {
                    let better = match &a {
                        None => true,
                        Some(c) => x.total_cmp(c) == std::cmp::Ordering::Greater,
                    };
                    if better {
                        *a = Some(x.clone());
                    }
                }
            }
            (
                AggState::TopK {
                    sketch: a,
                    display: da,
                    ..
                },
                AggState::TopK {
                    sketch: b,
                    display: db,
                    ..
                },
            ) => {
                a.merge(b);
                for (k, v) in db {
                    da.entry(k.clone()).or_insert_with(|| v.clone());
                }
            }
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.merge(b),
            (a, b) => {
                debug_assert!(false, "merging mismatched aggregate states");
                let _ = (a, b);
            }
        }
    }

    /// Produce the output value. `scale` multiplies extensive aggregates
    /// (COUNT, SUM, TOP-K counts) to compensate for sampling (Eq. 1's
    /// population scale-up); intensive aggregates (AVG/MIN/MAX) and
    /// COUNT_DISTINCT are reported unscaled.
    pub fn finish(&self, scale: f64) -> Value {
        match self {
            AggState::Count(c) => {
                if scale == 1.0 {
                    Value::Long(*c as i64)
                } else {
                    Value::Double((*c as f64 * scale).round())
                }
            }
            AggState::Sum { sum, any } => {
                if !any {
                    Value::Null
                } else {
                    Value::Double(sum * scale)
                }
            }
            AggState::Avg(w) => {
                if w.count() == 0 {
                    Value::Null
                } else {
                    Value::Double(w.mean())
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::TopK { k, sketch, display } => {
                let items = sketch.top_k(*k);
                Value::List(
                    items
                        .into_iter()
                        .map(|c| {
                            let val = display.get(&c.item).cloned().unwrap_or(Value::Null);
                            Value::Nested(vec![
                                ("value".into(), val),
                                (
                                    "count".into(),
                                    Value::Double((c.count as f64 * scale).round()),
                                ),
                                ("error".into(), Value::Long(c.error as i64)),
                            ])
                        })
                        .collect(),
                )
            }
            AggState::CountDistinct(hll) => Value::Double(hll.estimate().round()),
        }
    }
}

/// Stable 64-bit hash of a canonical group key (for HLL and partitioning).
pub fn group_key_hash(key: &GroupKey) -> u64 {
    use scrub_sketch::hash64;
    fn feed(key: &GroupKey, out: &mut Vec<u8>) {
        match key {
            GroupKey::Null => out.push(0),
            GroupKey::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            GroupKey::Bits(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            GroupKey::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            GroupKey::List(ks) => {
                out.push(4);
                out.extend_from_slice(&(ks.len() as u32).to_le_bytes());
                for k in ks {
                    feed(k, out);
                }
            }
            GroupKey::Map(kvs) => {
                out.push(5);
                out.extend_from_slice(&(kvs.len() as u32).to_le_bytes());
                for (k, v) in kvs {
                    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    feed(v, out);
                }
            }
        }
    }
    let mut buf = Vec::with_capacity(16);
    feed(key, &mut buf);
    hash64(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(func: AggFn) -> AggSpec {
        AggSpec { func, arg: None }
    }

    #[test]
    fn count_star_counts_rows_count_expr_skips_nulls() {
        let mut star = AggState::new(&spec(AggFn::Count));
        star.update(None);
        star.update(None);
        assert_eq!(star.finish(1.0), Value::Long(2));

        let mut cexpr = AggState::new(&spec(AggFn::Count));
        cexpr.update(Some(&Value::Long(1)));
        cexpr.update(Some(&Value::Null));
        assert_eq!(cexpr.finish(1.0), Value::Long(1));
    }

    #[test]
    fn sum_and_avg() {
        let mut s = AggState::new(&spec(AggFn::Sum));
        let mut a = AggState::new(&spec(AggFn::Avg));
        for v in [1.0, 2.0, 3.0] {
            s.update(Some(&Value::Double(v)));
            a.update(Some(&Value::Double(v)));
        }
        s.update(Some(&Value::Null)); // ignored
        assert_eq!(s.finish(1.0), Value::Double(6.0));
        assert_eq!(a.finish(1.0), Value::Double(2.0));
    }

    #[test]
    fn empty_aggregates_are_null_or_zero() {
        assert_eq!(
            AggState::new(&spec(AggFn::Count)).finish(1.0),
            Value::Long(0)
        );
        assert_eq!(AggState::new(&spec(AggFn::Sum)).finish(1.0), Value::Null);
        assert_eq!(AggState::new(&spec(AggFn::Avg)).finish(1.0), Value::Null);
        assert_eq!(AggState::new(&spec(AggFn::Min)).finish(1.0), Value::Null);
    }

    #[test]
    fn min_max_across_types() {
        let mut mn = AggState::new(&spec(AggFn::Min));
        let mut mx = AggState::new(&spec(AggFn::Max));
        for v in [Value::Long(5), Value::Double(2.5), Value::Long(9)] {
            mn.update(Some(&v));
            mx.update(Some(&v));
        }
        assert_eq!(mn.finish(1.0), Value::Double(2.5));
        assert_eq!(mx.finish(1.0), Value::Long(9));
    }

    #[test]
    fn scaling_applies_to_extensive_only() {
        let mut c = AggState::new(&spec(AggFn::Count));
        c.update(None);
        c.update(None);
        assert_eq!(c.finish(10.0), Value::Double(20.0));

        let mut a = AggState::new(&spec(AggFn::Avg));
        a.update(Some(&Value::Double(4.0)));
        assert_eq!(a.finish(10.0), Value::Double(4.0)); // unscaled
    }

    #[test]
    fn topk_returns_heavy_hitters_with_counts() {
        let mut t = AggState::new(&spec(AggFn::TopK(2)));
        for _ in 0..10 {
            t.update(Some(&Value::Str("a".into())));
        }
        for _ in 0..5 {
            t.update(Some(&Value::Str("b".into())));
        }
        t.update(Some(&Value::Str("c".into())));
        match t.finish(1.0) {
            Value::List(items) => {
                assert_eq!(items.len(), 2);
                match &items[0] {
                    Value::Nested(kv) => {
                        assert_eq!(kv[0].1, Value::Str("a".into()));
                        assert_eq!(kv[1].1, Value::Double(10.0));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_distinct_approximates() {
        let mut cd = AggState::new(&spec(AggFn::CountDistinct));
        for i in 0..1000i64 {
            cd.update(Some(&Value::Long(i % 100)));
        }
        match cd.finish(1.0) {
            Value::Double(est) => assert!((est - 100.0).abs() < 10.0, "est={est}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_matches_sequential() {
        let mut whole = AggState::new(&spec(AggFn::Sum));
        let mut a = AggState::new(&spec(AggFn::Sum));
        let mut b = AggState::new(&spec(AggFn::Sum));
        for i in 0..10 {
            let v = Value::Double(i as f64);
            whole.update(Some(&v));
            if i < 5 {
                a.update(Some(&v));
            } else {
                b.update(Some(&v));
            }
        }
        a.merge(&b);
        assert_eq!(a.finish(1.0), whole.finish(1.0));

        let mut ca = AggState::new(&spec(AggFn::Count));
        let mut cb = AggState::new(&spec(AggFn::Count));
        ca.update(None);
        cb.update(None);
        cb.update(None);
        ca.merge(&cb);
        assert_eq!(ca.finish(1.0), Value::Long(3));
    }

    #[test]
    fn group_key_hash_distinguishes() {
        let a = group_key_hash(&Value::Long(1).group_key());
        let b = group_key_hash(&Value::Long(2).group_key());
        let c = group_key_hash(&Value::Str("1".into()).group_key());
        assert_ne!(a, b);
        assert_ne!(a, c);
        // stable
        assert_eq!(a, group_key_hash(&Value::Long(1).group_key()));
    }

    #[test]
    fn numeric_widths_count_distinct_together() {
        let mut cd = AggState::new(&spec(AggFn::CountDistinct));
        cd.update(Some(&Value::Int(5)));
        cd.update(Some(&Value::Long(5)));
        match cd.finish(1.0) {
            Value::Double(est) => assert_eq!(est, 1.0),
            other => panic!("{other:?}"),
        }
    }
}
