//! §8.2 Validating a new ad exchange (Figures 11 & 12).
//!
//! Exchange D comes online at t = 550 s. The query counts impressions per
//! exchange in 10 s windows, sampling 10% of events on 50% of the
//! PresentationServers — statistical, not exact, is all that's needed to
//! confirm a healthy integration.
//!
//! ```sh
//! cargo run --release --example exchange_validation
//! ```

use std::collections::BTreeMap;

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let mut p = adplatform::build_platform(scenario::new_exchange());

    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            "select impression.exchange_id, COUNT(*) \
         from impression \
         @[Service in PresentationServers] \
         sample hosts 50% events 10% \
         group by impression.exchange_id \
         window 10 s duration 11 m",
        )
        .expect("query accepted");

    println!("running the platform through the exchange-D launch (t=550s)...");
    p.sim.run_until(SimTime::from_secs(12 * 60));

    let rec = qid.record(&p.sim).expect("accepted");

    // Figure 12: impressions per exchange over time.
    let mut series: BTreeMap<i64, [f64; 4]> = BTreeMap::new();
    for row in &rec.rows {
        let ex = row.values[0].as_i64().unwrap() as usize;
        let count = row.values[1].as_f64().unwrap();
        if ex < 4 {
            series.entry(row.window_start_ms / 1000).or_insert([0.0; 4])[ex] = count;
        }
    }

    println!("\ntime_s\tA\tB\tC\tD   (scaled estimates from 50% x 10% sampling)");
    for (t, counts) in series.iter().step_by(6) {
        println!(
            "{t}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            counts[0], counts[1], counts[2], counts[3]
        );
    }

    let before: f64 = series
        .iter()
        .filter(|(t, _)| **t < 550)
        .map(|(_, c)| c[3])
        .sum();
    let after: f64 = series
        .iter()
        .filter(|(t, _)| **t >= 560)
        .map(|(_, c)| c[3])
        .sum();
    println!(
        "\nexchange D impressions: {before:.0} before launch, {after:.0} after \
         -> integration {}",
        if after > 0.0 && before == 0.0 {
            "healthy"
        } else {
            "SUSPECT"
        }
    );
}
