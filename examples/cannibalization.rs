//! §8.5 Line-item cannibalization (Figures 18 & 19).
//!
//! Line item λ has budget and relaxed targeting but never serves: four
//! competitors with overlapping targeting have entire bid-price bands
//! above λ's. The Figure 19 query joins `auction` and `impression` events
//! on the request id, keeps the auctions λ participated in, and reports
//! per winner the win count and average winning price — every winner's
//! average sits above λ's advisory price, explaining the starvation.
//!
//! ```sh
//! cargo run --release --example cannibalization
//! ```

use std::collections::BTreeMap;

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let lambda = scenario::LAMBDA_LINE_ITEM as i64;
    let cfg = scenario::cannibalization();
    let advisory = cfg
        .line_items
        .iter()
        .find(|l| l.id == scenario::LAMBDA_LINE_ITEM)
        .unwrap()
        .advisory_price;
    let mut p = adplatform::build_platform(cfg);

    // Figure 19: join auctions with the impressions they produced, keep
    // the auctions λ participated in, group by the winning line item.
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select impression.line_item_id, COUNT(*), AVG(auction.winner_price) \
             from auction, impression \
             where contains(auction.line_item_ids, {lambda}) \
             @[Service in AdServers or Service in PresentationServers] \
             group by impression.line_item_id \
             window 1 m duration 8 m"
            ),
        )
        .expect("query accepted");

    println!("investigating why line item λ={lambda} never serves...");
    p.sim.run_until(SimTime::from_secs(10 * 60));

    let rec = qid.record(&p.sim).expect("accepted");

    // Figure 18a/18b: per line item, wins and average winning price.
    let mut wins: BTreeMap<i64, (i64, f64, i64)> = BTreeMap::new();
    for row in &rec.rows {
        let li = row.values[0].as_i64().unwrap();
        let count = row.values[1].as_i64().unwrap();
        let price = row.values[2].as_f64().unwrap();
        let e = wins.entry(li).or_insert((0, 0.0, 0));
        e.0 += count;
        e.1 += price;
        e.2 += 1;
    }

    println!("\nline_item\twins\tavg_winning_price");
    for (li, (count, price_sum, n)) in &wins {
        println!("{li}\t{count}\t{:.3}", price_sum / *n as f64);
    }
    println!("\nλ's advisory price: {advisory:.3}");

    let lambda_wins = wins.get(&lambda).map(|w| w.0).unwrap_or(0);
    let min_winner_price = wins
        .values()
        .map(|(_, s, n)| s / *n as f64)
        .fold(f64::INFINITY, f64::min);
    println!(
        "λ won {lambda_wins} of the auctions it entered; every winner's average \
         price ({min_winner_price:.3}+) exceeds λ's advisory price ({advisory:.3})\n\
         -> λ is cannibalized; raise its advisory bid price"
    );
}
