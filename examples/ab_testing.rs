//! §8.3 A/B testing of ad targeting models (Figures 13–15).
//!
//! Model B runs on half the pods. Two query templates per model — the CPM
//! query (`1000*AVG(impression.cost)`) and the CTR counts
//! (`COUNT(click) / COUNT(impression)`) — each targeting the servers of
//! one model via the `@[Servers in (list)]` clause. B should show a higher
//! CTR at roughly equal CPM.
//!
//! ```sh
//! cargo run --release --example ab_testing
//! ```

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let mut p = adplatform::build_platform(scenario::ab_test());
    let li = scenario::AB_LINE_ITEM;

    let host_list = |hosts: &[String]| {
        hosts
            .iter()
            .map(|h| format!("'{h}'"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let a_hosts = host_list(&p.pres_hosts_for_model("A"));
    let b_hosts = host_list(&p.pres_hosts_for_model("B"));

    let mut submit = |src: String| {
        ScrubClient::new(&p.scrub)
            .submit(&mut p.sim, &src)
            .expect("query accepted")
    };
    let mut q = |event: &str, select: &str, hosts: &str| -> QueryHandle {
        submit(format!(
            "Select {select} from {event} \
             where {event}.line_item_id = {li} \
             @[Servers in ({hosts})] \
             window 1 m duration 10 m"
        ))
    };

    // Figure 13: CPM per model; Figure 14: impression & click counts.
    let cpm_a = q("impression", "1000*AVG(impression.cost)", &a_hosts);
    let cpm_b = q("impression", "1000*AVG(impression.cost)", &b_hosts);
    let imp_a = q("impression", "COUNT(*)", &a_hosts);
    let imp_b = q("impression", "COUNT(*)", &b_hosts);
    let clk_a = q("click", "COUNT(*)", &a_hosts);
    let clk_b = q("click", "COUNT(*)", &b_hosts);

    println!("running the A/B experiment for 11 simulated minutes...");
    p.sim.run_until(SimTime::from_secs(12 * 60));

    let total = |qid: QueryHandle| -> f64 {
        qid.record(&p.sim)
            .map(|r| r.rows.iter().filter_map(|row| row.values[0].as_f64()).sum())
            .unwrap_or(0.0)
    };
    let avg = |qid: QueryHandle| -> f64 {
        qid.record(&p.sim)
            .map(|r| {
                let vals: Vec<f64> = r
                    .rows
                    .iter()
                    .filter_map(|row| row.values[0].as_f64())
                    .collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            })
            .unwrap_or(0.0)
    };

    let (cpm_a, cpm_b) = (avg(cpm_a), avg(cpm_b));
    let (imps_a, imps_b) = (total(imp_a), total(imp_b));
    let (clks_a, clks_b) = (total(clk_a), total(clk_b));
    let ctr = |c: f64, i: f64| if i > 0.0 { c / i } else { 0.0 };

    println!("\nmodel\tCPM\timpressions\tclicks\tCTR");
    println!(
        "A\t{cpm_a:.1}\t{imps_a:.0}\t\t{clks_a:.0}\t{:.4}",
        ctr(clks_a, imps_a)
    );
    println!(
        "B\t{cpm_b:.1}\t{imps_b:.0}\t\t{clks_b:.0}\t{:.4}",
        ctr(clks_b, imps_b)
    );
    println!(
        "\nCTR(B)/CTR(A) = {:.2} at CPM ratio {:.2} -> model B wins: better CTR at the same cost",
        ctr(clks_b, imps_b) / ctr(clks_a, imps_a).max(1e-12),
        cpm_b / cpm_a.max(1e-12)
    );
}
