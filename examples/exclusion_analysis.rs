//! §8.4 Debugging non-serving line items via exclusion analysis (Fig 16/17).
//!
//! A line item with narrow targeting and a small budget barely serves. The
//! query joins `bid` and `exclusion` events on the request id — bids are
//! produced at BidServers, exclusions at AdServers, so the join spans
//! services — filtered to one exchange, and histograms the exclusion
//! reasons of the suspect line item.
//!
//! ```sh
//! cargo run --release --example exclusion_analysis
//! ```

use std::collections::BTreeMap;

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let li = scenario::EXCLUSION_LINE_ITEM;
    let mut p = adplatform::build_platform(scenario::exclusions());

    // Narrow to exchange 0 via the bid side, line item via the exclusion
    // side; group by reason — the cross-service equi-join of §8.4.
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select exclusion.reason, COUNT(*) \
             from bid, exclusion \
             where exclusion.line_item_id = {li} and bid.exchange_id = 0 \
             @[Service in BidServers or Service in AdServers] \
             group by exclusion.reason \
             window 1 m duration 6 m"
            ),
        )
        .expect("query accepted");

    println!("why does line item {li} not serve? (joining bid x exclusion)...");
    p.sim.run_until(SimTime::from_secs(8 * 60));

    let rec = qid.record(&p.sim).expect("accepted");
    let mut histogram: BTreeMap<String, i64> = BTreeMap::new();
    for row in &rec.rows {
        let reason = row.values[0].as_str().unwrap_or("?").to_string();
        *histogram.entry(reason).or_insert(0) += row.values[1].as_i64().unwrap_or(0);
    }

    println!("\nexclusion reason histogram for line item {li} on exchange 0:");
    println!("reason\t\t\tcount");
    for (reason, count) in &histogram {
        println!("{reason:<24}{count}");
    }

    let top = histogram
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(r, _)| r.clone())
        .unwrap_or_default();
    println!(
        "\ndominant exclusion reason: {top} -> compare against a well-behaved \
         line item's distribution to confirm the anomaly (§8.4)"
    );
}
