//! Catching a bad software rollout (the §1 motivation: "new versions of
//! the software often introduce bugs", and rollouts are constant).
//!
//! Half the AdServers receive a new build at t=120 s; its planted defect
//! inflates winning bid prices 5×, silently overspending advertiser
//! budgets. Two concurrent queries — the same AVG(bid.bid_price), one
//! targeting old-build servers, one targeting new-build servers through
//! the `@[Servers in (...)]` clause — expose the regression within one
//! window of the rollout, while the platform keeps serving.
//!
//! ```sh
//! cargo run --release --example rollout_regression
//! ```

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let mut p = adplatform::build_platform(scenario::rollout_regression());

    // Bid events are emitted at BidServers, but the price is decided by the
    // AdServer pod that ran the auction; the A/B comparison therefore joins
    // auction events (AdServers) per build group.
    let quote = |hosts: &[String]| {
        hosts
            .iter()
            .map(|h| format!("'{h}'"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let old_hosts = quote(&p.adserver_hosts_for_rollout(false));
    let new_hosts = quote(&p.adserver_hosts_for_rollout(true));

    let mut q = |hosts: &str| {
        ScrubClient::new(&p.scrub)
            .submit(
                &mut p.sim,
                &format!(
                    "select AVG(auction.winner_price) from auction \
                 @[Servers in ({hosts})] window 30 s duration 5 m"
                ),
            )
            .expect("query accepted")
    };
    let q_old = q(&old_hosts);
    let q_new = q(&new_hosts);

    println!("rollout hits half the AdServers at t=120s; watching prices...");
    p.sim.run_until(SimTime::from_secs(6 * 60));

    let series = |qid: QueryHandle| -> Vec<(i64, f64)> {
        qid.record(&p.sim)
            .map(|r| {
                r.rows
                    .iter()
                    .filter_map(|row| Some((row.window_start_ms / 1000, row.values[0].as_f64()?)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let old_series = series(q_old);
    let new_series = series(q_new);

    println!("\nwindow_s\tAVG price (old build)\tAVG price (new build)");
    for ((t, old), (_, new)) in old_series.iter().zip(new_series.iter()) {
        let marker = if *new > old * 2.0 {
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!("{t}\t{old:.3}\t\t\t{new:.3}{marker}");
    }

    let before: f64 = avg(&new_series, |t| t < 120);
    let after: f64 = avg(&new_series, |t| t >= 150);
    let old_after: f64 = avg(&old_series, |t| t >= 150);
    println!(
        "\nnew-build average price: {before:.3} before rollout, {after:.3} after \
         ({:.1}x); old build stays at {old_after:.3}\n\
         -> the new build inflates bid prices; roll it back",
        after / before.max(1e-9)
    );
}

fn avg(series: &[(i64, f64)], keep: impl Fn(i64) -> bool) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| keep(*t))
        .map(|(_, v)| *v)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}
