//! §8.6 Incorrectly set field.
//!
//! A campaign is capped at one ad per user per day, yet some users see
//! more. The planted fault: the ProfileStore silently drops frequency-count
//! updates for one in ten users, so the filtering phase never sees their
//! counts rise. The troubleshooting query groups impressions of the capped
//! line item by user — users exceeding the cap are exactly the corrupted
//! ones.
//!
//! ```sh
//! cargo run --release --example frequency_cap_bug
//! ```

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let li = scenario::CAPPED_LINE_ITEM;
    let mut p = adplatform::build_platform(scenario::freq_cap());

    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select impression.user_id, COUNT(*) \
             from impression \
             where impression.line_item_id = {li} \
             @[Service in PresentationServers] \
             group by impression.user_id \
             window 1 d duration 10 m"
            ),
        )
        .expect("query accepted");

    println!("customer reports users see the capped ad more than once/day...");
    p.sim.run_until(SimTime::from_secs(12 * 60));

    let rec = qid.record(&p.sim).expect("accepted");
    // A count slightly above the cap can be mere replication lag between
    // the ProfileStore and the AdServers' cap check; a count far above it
    // means the user's frequency count is not rising at all.
    const GROSS: i64 = 5;
    let mut gross = Vec::new();
    let mut lagged = 0u64;
    let mut capped_ok = 0u64;
    for row in &rec.rows {
        let user = row.values[0].as_i64().unwrap() as u64;
        let count = row.values[1].as_i64().unwrap();
        if count > GROSS {
            gross.push((user, count));
        } else if count > 1 {
            lagged += 1;
        } else {
            capped_ok += 1;
        }
    }
    gross.sort_by_key(|(_, c)| -c);

    println!(
        "\n{capped_ok} users within the cap; {lagged} users slightly over \
         (replication lag); {} users grossly over the cap:",
        gross.len()
    );
    println!(
        "user_id\timpressions_today\tuser_id % {}",
        scenario::CORRUPT_USER_MOD
    );
    for (user, count) in gross.iter().take(15) {
        println!("{user}\t{count}\t\t\t{}", user % scenario::CORRUPT_USER_MOD);
    }

    let all_corrupt = gross
        .iter()
        .all(|(u, _)| u % scenario::CORRUPT_USER_MOD == 0);
    println!(
        "\nevery gross violator has user_id % {} == 0: {all_corrupt} \
         -> the frequency counts of those users are not being updated; \
         inspect the ProfileStore write path",
        scenario::CORRUPT_USER_MOD
    );
}
