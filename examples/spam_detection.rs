//! §8.1 Spam detection (Figures 9 & 10).
//!
//! Two bots fake page views at high frequency among thousands of Zipf-paced
//! human users. The Figure 9 query — bid requests per user per 10 s window
//! on one BidServer — makes them jump out: humans form an exponentially
//! decaying tail (most users: one request per window), the bots sit orders
//! of magnitude above it.
//!
//! ```sh
//! cargo run --release --example spam_detection
//! ```

use std::collections::BTreeMap;

use scrub::prelude::*;
use scrub::scenario;

fn main() {
    let cfg = scenario::spam();
    let bots = scenario::spam_bot_user_ids(&cfg);
    let mut p = adplatform::build_platform(cfg);

    // Figure 9, verbatim structure: one BidServer, grouped counts.
    let host = p.sim.metas()[p.bidservers[0].0 as usize].name.clone();
    let qid = ScrubClient::new(&p.scrub)
        .submit(
            &mut p.sim,
            &format!(
                "Select bid.user_id, COUNT(*) \
             from bid \
             @[Service in BidServers and Server = '{host}'] \
             group by bid.user_id \
             window 10 s duration 8 m"
            ),
        )
        .expect("query accepted");

    println!("running the bidding platform for 9 simulated minutes...");
    p.sim.run_until(SimTime::from_secs(9 * 60));

    let rec = qid.record(&p.sim).expect("accepted");
    println!("query finished: {:?}, {} rows", rec.state, rec.rows.len());

    // Figure 10's shape: per window, the distribution of requests/user.
    let mut human_hist: BTreeMap<i64, u64> = BTreeMap::new();
    let mut bot_peaks: BTreeMap<i64, i64> = BTreeMap::new();
    for row in &rec.rows {
        let user = row.values[0].as_i64().unwrap() as u64;
        let count = row.values[1].as_i64().unwrap();
        if bots.contains(&user) {
            let peak = bot_peaks.entry(user as i64).or_insert(0);
            *peak = (*peak).max(count);
        } else {
            *human_hist.entry(count).or_insert(0) += 1;
        }
    }

    println!("\nrequests-per-user-per-window histogram (humans):");
    println!("count\t#user-windows");
    for (count, users) in human_hist.iter().take(12) {
        println!("{count}\t{users}");
    }
    println!("\nbot peaks (requests in a single 10 s window):");
    for (bot, peak) in &bot_peaks {
        println!("user {bot}\tpeak {peak}");
    }

    let max_human = human_hist.keys().max().copied().unwrap_or(0);
    let min_bot = bot_peaks.values().min().copied().unwrap_or(0);
    println!(
        "\nmax human count = {max_human}, min bot peak = {min_bot} -> \
         bots stand {}x above the human tail; blacklist them",
        if max_human > 0 {
            min_bot / max_human
        } else {
            0
        }
    );
}
