//! Quickstart: build a tiny simulated cluster, define an event type, run a
//! ScrubQL query, and print the windowed results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use scrub::prelude::*;
use scrub_core::event::RequestId;
use scrub_core::schema::EventTypeId;
use scrub_simnet::{Context, Node};

/// A minimal application host: emits one `request` event per millisecond.
struct AppHost {
    harness: AgentHarness,
    n: u64,
}

impl Node<ScrubMsg> for AppHost {
    fn on_start(&mut self, ctx: &mut Context<'_, ScrubMsg>) {
        self.harness.start(ctx);
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ScrubMsg>, from: NodeId, msg: ScrubMsg) {
        let _ = self.harness.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ScrubMsg>, timer: u64) {
        if self.harness.on_timer(ctx, timer) {
            return;
        }
        // the application-side tap: one log() call per event site (§3.1)
        self.harness.agent().log(
            EventTypeId(0),
            RequestId(self.n),
            ctx.now.as_ms(),
            &[
                Value::Str(["/home", "/search", "/cart"][(self.n % 3) as usize].into()),
                Value::Long((self.n % 100) as i64),
            ],
        );
        self.n += 1;
        ctx.set_timer(SimDuration::from_ms(1), 1);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn main() {
    // 1. The application declares its event types (compare Figure 1).
    let registry = SchemaRegistry::new();
    registry
        .register(
            EventSchema::new(
                "request",
                vec![
                    FieldDef::new("endpoint", FieldType::Str),
                    FieldDef::new("latency_ms", FieldType::Long),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    let registry = Arc::new(registry);

    // 2. Build a simulated cluster: 3 app hosts + a Scrub deployment.
    let mut sim: Sim<ScrubMsg> = Sim::new(Topology::default(), 1);
    let central = deploy_central(&mut sim, &registry, ScrubConfig::default(), "DC1");
    for i in 0..3 {
        let name = format!("web-{i}");
        let harness = AgentHarness::new(name.clone(), ScrubConfig::default(), central);
        sim.add_node(
            NodeMeta::new(name, "WebServers", "DC1"),
            Box::new(AppHost { harness, n: 0 }),
        );
    }
    let scrub = deploy_server(&mut sim, registry, ScrubConfig::default(), central, "DC1");

    // 3. A troubleshooter submits a ScrubQL query.
    let qid = ScrubClient::new(&scrub)
        .submit(
            &mut sim,
            "select request.endpoint, COUNT(*), AVG(request.latency_ms) \
         from request \
         @[Service in WebServers] \
         group by request.endpoint \
         window 5 s duration 20 s",
        )
        .expect("query accepted");

    // 4. Run the cluster and read the windowed results.
    sim.run_until(SimTime::from_secs(40));
    let record = qid.record(&sim).expect("query accepted");
    println!("query state: {:?}", record.state);
    println!("window_start\tendpoint\tcount\tavg_latency");
    for row in &record.rows {
        println!("{}", row.to_tsv());
    }
    let summary = record.summary.as_ref().expect("summary");
    println!(
        "\n{} hosts reported, {} events matched, {} shipped",
        summary.hosts_reporting, summary.total_matched, summary.total_sampled
    );
}
